"""Modified-Cholesky estimation of the inverse background covariance.

This is the estimator at the heart of P-EnKF (Nino-Ruiz, Sandu & Deng 2017,
2018; Bickel & Levina 2008), which the paper adopts for the local analysis:
instead of the rank-deficient sample covariance, fit

    B̂⁻¹ = Lᵀ D⁻¹ L

where ``L`` is unit lower-triangular and ``D`` diagonal, from per-variable
regressions: each component ``x_i`` is regressed onto its *predecessors in
a fixed ordering that lie within the localization radius*, so ``L`` is
sparse by construction and the estimate is well-conditioned even for small
ensembles.  ``B̂⁻¹`` is symmetric positive definite whenever every residual
variance is positive (we floor them to guarantee it).

The function operates on a *local* ensemble (a sub-domain expansion): the
coordinate arrays tell it the (ix, iy) of each component so the conditional
dependence structure follows the physical localization radius.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.backend import ArrayBackend, get_backend
from repro.core.grid import Grid
from repro.util.validation import check_positive


def neighbour_predecessors(
    grid: Grid,
    ix: np.ndarray,
    iy: np.ndarray,
    radius_km: float,
) -> list[np.ndarray]:
    """For each component i, indices j < i within ``radius_km`` of i.

    The ordering is the components' storage order (row-major over the
    expansion), matching the column-major "previous rows" conditioning in
    the modified-Cholesky literature.
    """
    check_positive("radius_km", radius_km)
    ix = np.asarray(ix)
    iy = np.asarray(iy)
    n = ix.size
    preds: list[np.ndarray] = []
    for i in range(n):
        dx = np.abs(ix[:i] - ix[i])
        if grid.periodic_x:
            dx = np.minimum(dx, grid.n_x - dx)
        dy = np.abs(iy[:i] - iy[i])
        dist = np.hypot(dx * grid.dx_km, dy * grid.dy_km)
        preds.append(np.nonzero(dist <= radius_km)[0])
    return preds


def modified_cholesky_inverse(
    states: np.ndarray,
    grid: Grid,
    ix: np.ndarray,
    iy: np.ndarray,
    radius_km: float,
    ridge: float = 1e-8,
    min_variance: float = 1e-12,
    sparse: bool = False,
    predecessors: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Estimate ``B̂⁻¹`` from a (local) ensemble by modified Cholesky.

    Parameters
    ----------
    states:
        (n_local, N) ensemble matrix.
    grid, ix, iy:
        Mesh and per-component grid coordinates (for the radius test).
    radius_km:
        Localization radius defining the conditional-dependence stencil.
    ridge:
        Tikhonov regularisation added to each regression's normal matrix
        (scaled by its trace) — keeps the fit well-posed when the number of
        predecessors approaches or exceeds N.
    min_variance:
        Floor on residual variances so ``D⁻¹`` (and hence SPD-ness) is
        always defined.
    sparse:
        Return a ``scipy.sparse.csr_matrix`` instead of a dense array.
        ``L`` has at most ``O(stencil)`` entries per row, so ``B̂⁻¹`` is
        banded; the sparse representation lets the precision-form solve
        use sparse factorisation on large local domains.
    predecessors:
        Pre-computed :func:`neighbour_predecessors` stencil.  The stencil
        depends only on the coordinates and the radius — never on the
        ensemble — so callers that analyse the same sub-domain every cycle
        (the geometry cache) pass it in and skip the O(n²) rebuild.

    Returns
    -------
    (n_local, n_local) SPD matrix ``B̂⁻¹ = Lᵀ D⁻¹ L`` (dense ndarray, or
    CSR when ``sparse=True``).
    """
    u = np.asarray(states, dtype=float)
    if u.ndim != 2:
        raise ValueError(f"expected (n, N) ensemble, got shape {u.shape}")
    n, n_members = u.shape
    if n_members < 2:
        raise ValueError("modified Cholesky needs at least 2 members")
    if np.asarray(ix).size != n or np.asarray(iy).size != n:
        raise ValueError("coordinate arrays must match the state dimension")
    u = u - u.mean(axis=1, keepdims=True)

    if predecessors is not None:
        if len(predecessors) != n:
            raise ValueError(
                f"predecessors has {len(predecessors)} entries for n={n}"
            )
        preds = predecessors
    else:
        preds = neighbour_predecessors(grid, ix, iy, radius_km)
    d = np.empty(n)
    dof = max(n_members - 1, 1)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []

    for i in range(n):
        p = preds[i]
        xi = u[i]
        rows.append(i)
        cols.append(i)
        vals.append(1.0)
        if p.size == 0:
            resid = xi
        else:
            xp = u[p]  # (|p|, N)
            gram = xp @ xp.T
            lam = ridge * (np.trace(gram) / max(p.size, 1) + 1.0)
            gram[np.diag_indices_from(gram)] += lam
            beta = np.linalg.solve(gram, xp @ xi)
            rows.extend([i] * p.size)
            cols.extend(int(j) for j in p)
            vals.extend(float(-b) for b in beta)
            resid = xi - beta @ xp
        d[i] = max(float(resid @ resid) / dof, min_variance)

    lower = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    d_inv = sp.diags(1.0 / d)
    b_inv = (lower.T @ d_inv @ lower).tocsr()
    if sparse:
        return b_inv
    return np.asarray(b_inv.todense())


def modified_cholesky_inverse_batched(
    states,
    predecessors: list[np.ndarray],
    ridge: float = 1e-8,
    min_variance: float = 1e-12,
    backend: ArrayBackend | None = None,
):
    """Batched ``B̂⁻¹ = Lᵀ D⁻¹ L`` over a stack of same-stencil ensembles.

    The per-piece estimator above spends its time in a Python loop over
    the ``n`` components, each iteration doing a tiny ``(|p|, |p|)``
    solve.  When ``B`` sub-domain pieces share one predecessor stencil
    (translation-equivalent expansions — verified structurally by the
    bucketing layer, never assumed), the loop can run *once* with every
    per-row operation batched over the stack: ``B·n`` Python iterations
    collapse to ``n``, and each solve becomes one batched LAPACK call.

    Parameters
    ----------
    states:
        ``(B, n, N)`` stack of local ensembles (all sharing the stencil).
    predecessors:
        The shared :func:`neighbour_predecessors` stencil (length ``n``).
    ridge, min_variance:
        Same regularisation knobs as :func:`modified_cholesky_inverse`.
    backend:
        :class:`~repro.core.backend.ArrayBackend` to run under; ``None``
        resolves the default (NumPy unless ``SENKF_BACKEND`` says
        otherwise).

    Returns the ``(B, n, n)`` stack of dense SPD precision estimates as
    a backend array (callers keep it on-device for the batched solve).
    Per-slice results match :func:`modified_cholesky_inverse` to
    floating-point reduction order (rtol ≲ 1e-12), not bit-identically —
    batched BLAS may reduce in a different order.
    """
    bk = backend if backend is not None else get_backend()
    xp = bk.xp
    u = bk.asarray(states, dtype=float)
    if u.ndim != 3:
        raise ValueError(f"expected (B, n, N) ensemble stack, got {u.shape}")
    n_batch, n, n_members = u.shape
    if n_members < 2:
        raise ValueError("modified Cholesky needs at least 2 members")
    if len(predecessors) != n:
        raise ValueError(
            f"predecessors has {len(predecessors)} entries for n={n}"
        )
    u = u - u.mean(axis=2, keepdims=True)
    dof = max(n_members - 1, 1)

    d = xp.ones((n_batch, n))
    l_mat = xp.zeros((n_batch, n, n))
    diag = xp.arange(n)
    l_mat = bk.index_update(l_mat, (slice(None), diag, diag), 1.0)
    for i in range(n):
        p = predecessors[i]
        xi = u[:, i, :]  # (B, N)
        if p.size == 0:
            resid = xi
        else:
            xp_ = u[:, p, :]  # (B, |p|, N)
            gram = xp_ @ xp_.transpose(0, 2, 1)  # (B, |p|, |p|)
            trace = bk.einsum("bii->b", gram)
            lam = ridge * (trace / p.size + 1.0)
            eye = xp.arange(p.size)
            gram = bk.index_update(
                gram, (slice(None), eye, eye), gram[:, eye, eye] + lam[:, None]
            )
            beta = bk.solve(gram, xp_ @ xi[:, :, None])  # (B, |p|, 1)
            l_mat = bk.index_update(
                l_mat, (slice(None), i, p), -beta[:, :, 0]
            )
            resid = xi - bk.einsum("bp,bpk->bk", beta[:, :, 0], xp_)
        var = xp.sum(resid * resid, axis=1) / dof
        d = bk.index_update(
            d, (slice(None), i), xp.maximum(var, min_variance)
        )
    # B̂⁻¹ = Lᵀ D⁻¹ L, batched.
    return bk.einsum("bki,bk,bkj->bij", l_mat, 1.0 / d, l_mat)
