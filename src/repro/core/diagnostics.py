"""Desroziers observation-space diagnostics.

Desroziers et al. (2005): in a statistically consistent assimilation
system, the cross-products of the background innovations
``d_b = y − H x̄^b`` and the analysis residuals ``d_a = y − H x̄^a``
estimate the error covariances actually at play:

* ``E[d_b d_bᵀ] ≈ H B Hᵀ + R``  (innovation variance),
* ``E[d_a d_bᵀ] ≈ R``           (observation-error consistency),
* ``E[(H x̄^a − H x̄^b) d_bᵀ] ≈ H B Hᵀ``  (background-error consistency).

These are the standard operational tools for validating the ``B̂⁻¹``
estimate and the prescribed ``R`` — exactly what a centre adopting this
library would run after every reanalysis stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class DesroziersStats:
    """Scalar (diagonal-mean) consistency diagnostics."""

    #: mean d_b² — should match hbht_plus_r_expected
    innovation_variance: float
    #: mean d_a·d_b — estimates the actual observation-error variance
    estimated_r: float
    #: mean (Hxa − Hxb)·d_b — estimates the actual background variance in
    #: observation space
    estimated_hbht: float
    #: the R variance the system assumed
    assumed_r: float

    @property
    def r_consistency_ratio(self) -> float:
        """Estimated over assumed observation-error variance (1 = consistent)."""
        return self.estimated_r / self.assumed_r

    @property
    def innovation_consistency_ratio(self) -> float:
        """Innovation variance over its prediction (1 = consistent)."""
        predicted = self.estimated_hbht + self.assumed_r
        return self.innovation_variance / predicted if predicted > 0 else np.inf


def desroziers_diagnostics(
    background: np.ndarray,
    analysis: np.ndarray,
    h_operator,
    y: np.ndarray,
    assumed_r_variance: float,
) -> DesroziersStats:
    """Compute the diagnostics from one assimilation's in/out ensembles.

    Parameters
    ----------
    background, analysis:
        (n, N) ensembles before and after the update.
    h_operator, y:
        The observation operator and observations used.
    assumed_r_variance:
        The (scalar) observation-error variance the analysis assumed.
    """
    check_positive("assumed_r_variance", assumed_r_variance)
    xb = np.asarray(background, dtype=float)
    xa = np.asarray(analysis, dtype=float)
    if xb.shape != xa.shape or xb.ndim != 2:
        raise ValueError(
            f"background {xb.shape} and analysis {xa.shape} must match"
        )
    y = np.asarray(y, dtype=float).ravel()
    hxb = np.asarray(h_operator @ xb.mean(axis=1))
    hxa = np.asarray(h_operator @ xa.mean(axis=1))
    if hxb.size != y.size:
        raise ValueError(
            f"operator maps to {hxb.size} values but y has {y.size}"
        )
    d_b = y - hxb
    d_a = y - hxa
    return DesroziersStats(
        innovation_variance=float(np.mean(d_b**2)),
        estimated_r=float(np.mean(d_a * d_b)),
        estimated_hbht=float(np.mean((hxa - hxb) * d_b)),
        assumed_r=float(assumed_r_variance),
    )
