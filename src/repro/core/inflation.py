"""Multiplicative covariance inflation.

Standard remedy for the variance underestimation of finite ensembles in
cycling assimilation: scale anomalies about the mean by ``ρ ≥ 1`` so the
filter keeps enough spread to accept future observations.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive


def inflate(states: np.ndarray, factor: float) -> np.ndarray:
    """Return the ensemble with anomalies scaled by ``factor``.

    ``X ← x̄ ⊗ 1ᵀ + ρ (X − x̄ ⊗ 1ᵀ)``; the mean is untouched.
    """
    check_positive("factor", factor)
    states = np.asarray(states, dtype=float)
    if states.ndim != 2:
        raise ValueError(f"expected (n, N) ensemble, got {states.shape}")
    mean = states.mean(axis=1, keepdims=True)
    return mean + factor * (states - mean)
