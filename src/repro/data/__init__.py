"""On-disk ensemble storage: the actual files the paper's filters read.

The background ensemble is one raw binary file per member — the flat state
in latitude-row-major order, ``float64`` — exactly the layout
:mod:`repro.io.layout` models for the simulator.  :class:`EnsembleStore`
writes/reads such files, and :func:`read_plan_from_disk` executes any
:class:`~repro.io.plan.ReadPlan` against them with real ``seek``/``read``
system calls, so the strategies are exercised end-to-end against a real
file system as well as against the simulated one.
"""

from repro.data.store import EnsembleStore, read_plan_from_disk

__all__ = ["EnsembleStore", "read_plan_from_disk"]
