"""Raw-binary ensemble files and extent-based reading.

File format: member ``k`` lives in ``member_0000k.bin`` as ``grid.n``
little-endian float64 values, latitude-row-major (one latitude row of
``n_x`` longitudes after another) — the storage order Sec. 4.1.1 assumes,
under which a latitude bar is one contiguous extent and a block is one
extent per row.

``h_bytes`` in the performance model bundles vertical levels; the store
keeps one 2-D level per file (``h = 8``) because the numerics operate on
2-D fields.  Multi-level states can be stored as separate fields.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.grid import Grid
from repro.faults.errors import CorruptMemberError
from repro.io.layout import FileLayout
from repro.io.plan import ReadPlan
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

_DTYPE = np.dtype("<f8")


class EnsembleStore:
    """A directory of member files with the paper's on-disk layout."""

    def __init__(self, directory: str | Path, grid: Grid):
        self.directory = Path(directory)
        self.grid = grid
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def layout(self) -> FileLayout:
        """The layout model matching this store's files."""
        return FileLayout(grid=self.grid, h_bytes=_DTYPE.itemsize)

    def member_path(self, k: int) -> Path:
        if k < 0:
            raise ValueError(f"member index must be >= 0, got {k}")
        return self.directory / f"member_{k:05d}.bin"

    # -- writing -----------------------------------------------------------
    def write_member(self, k: int, state: np.ndarray) -> Path:
        """Write one member's flat state vector atomically.

        The bytes land in a sibling ``member_*.bin.tmp`` file which is
        fsynced and then ``os.replace``d over the real name, so a crashed
        writer can never leave a torn member file: a reader sees either
        the previous complete member or the new complete one, never a
        partial write.  A stale ``.tmp`` from an earlier crash is simply
        overwritten (and never matches the ``member_*.bin`` glob).
        """
        state = np.asarray(state, dtype=float)
        if state.shape != (self.grid.n,):
            raise ValueError(
                f"state must have shape ({self.grid.n},), got {state.shape}"
            )
        tracer = get_tracer()
        if not tracer.enabled:
            return self._write_member(k, state)
        nbytes = state.size * _DTYPE.itemsize
        with tracer.span(
            "store.write_member", category="io", member=k, bytes=nbytes
        ):
            path = self._write_member(k, state)
        metrics = get_metrics()
        metrics.counter("io.members_written").inc()
        metrics.counter("io.bytes_written").inc(nbytes)
        return path

    def _write_member(self, k: int, state: np.ndarray) -> Path:
        path = self.member_path(k)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(state.astype(_DTYPE).tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def write_ensemble(self, states: np.ndarray) -> list[Path]:
        """Write an (n, N) ensemble as N member files."""
        states = np.asarray(states, dtype=float)
        if states.ndim != 2 or states.shape[0] != self.grid.n:
            raise ValueError(
                f"ensemble must be ({self.grid.n}, N), got {states.shape}"
            )
        return [
            self.write_member(k, states[:, k]) for k in range(states.shape[1])
        ]

    # -- reading ------------------------------------------------------------
    def n_members(self) -> int:
        """Number of member files present."""
        return len(list(self.directory.glob("member_*.bin")))

    def read_member(self, k: int) -> np.ndarray:
        """Read one full member.

        Raises :class:`~repro.faults.errors.CorruptMemberError` (a
        ``ValueError`` subclass) when the file holds the wrong number of
        values — a truncated or overgrown member must never silently become
        a wrong-shape ensemble column.
        """
        tracer = get_tracer()
        if not tracer.enabled:  # hot path: no span/dict allocations
            return self._read_member(k)
        with tracer.span("store.read_member", category="io", member=k) as span:
            data = self._read_member(k)
            span.set(bytes=data.size * _DTYPE.itemsize)
        metrics = get_metrics()
        metrics.counter("io.members_read").inc()
        metrics.counter("io.bytes_read").inc(data.size * _DTYPE.itemsize)
        return data

    def _read_member(self, k: int) -> np.ndarray:
        path = self.member_path(k)
        if not path.exists():
            raise FileNotFoundError(path)
        data = np.fromfile(path, dtype=_DTYPE)
        if data.size != self.grid.n:
            raise CorruptMemberError(
                k, f"{path} holds {data.size} values, expected {self.grid.n}"
            )
        return data.astype(float)

    def read_ensemble(self) -> np.ndarray:
        """Read all members into an (n, N) matrix (member order)."""
        n = self.n_members()
        if n == 0:
            raise FileNotFoundError(f"no member files in {self.directory}")
        return np.column_stack([self.read_member(k) for k in range(n)])

    def read_extents(
        self, k: int, extents: list[tuple[int, int]]
    ) -> np.ndarray:
        """Read a list of (start_elem, n_elems) extents with real seeks.

        One ``seek`` + one ``read`` per extent — the exact disk-addressing
        pattern the simulator charges for.

        Extent bounds are validated against both the logical grid size and
        the *actual* file size, and every read is checked for shortness, so
        an undersized member file raises a typed
        :class:`~repro.faults.errors.CorruptMemberError` instead of
        yielding a silently wrong-shaped array.
        """
        tracer = get_tracer()
        if not tracer.enabled:  # hot path: no span/dict allocations
            return self._read_extents(k, extents)
        with tracer.span(
            "store.read_extents", category="io", member=k, seeks=len(extents)
        ) as span:
            data = self._read_extents(k, extents)
            span.set(bytes=data.size * _DTYPE.itemsize)
        metrics = get_metrics()
        metrics.counter("io.extent_reads").inc()
        metrics.counter("io.seeks").inc(len(extents))
        metrics.counter("io.bytes_read").inc(data.size * _DTYPE.itemsize)
        return data

    def _read_extents(
        self, k: int, extents: list[tuple[int, int]]
    ) -> np.ndarray:
        path = self.member_path(k)
        if not path.exists():
            raise FileNotFoundError(path)
        item = _DTYPE.itemsize
        file_elems = path.stat().st_size // item
        pieces = []
        with open(path, "rb") as fh:
            for start, length in extents:
                if start < 0 or length <= 0 or start + length > self.grid.n:
                    raise ValueError(f"extent ({start}, {length}) out of range")
                if start + length > file_elems:
                    raise CorruptMemberError(
                        k,
                        f"extent ({start}, {length}) beyond end of {path} "
                        f"({file_elems} of {self.grid.n} expected values "
                        f"present)",
                    )
                fh.seek(start * item)
                buf = fh.read(length * item)
                if len(buf) != length * item:
                    raise CorruptMemberError(
                        k,
                        f"short read on {path}: got {len(buf)} of "
                        f"{length * item} bytes at element {start}",
                    )
                pieces.append(np.frombuffer(buf, dtype=_DTYPE))
        return np.concatenate(pieces).astype(float)


def read_plan_from_disk(
    plan: ReadPlan, store: EnsembleStore
) -> dict[int, dict[int, np.ndarray]]:
    """Execute a strategy's :class:`ReadPlan` against real files.

    Returns ``rank -> file_id -> values`` exactly like
    :func:`repro.io.execute.execute_read_plan_inline`, but with genuine
    ``seek``/``read`` calls against the store — end-to-end proof that the
    plans' extents are valid on the real layout.
    """
    tracer = get_tracer()
    out: dict[int, dict[int, np.ndarray]] = {}
    with tracer.span(
        "io.read_plan", category="io", n_ranks=len(plan.per_rank)
    ):
        for rank, rank_plan in plan.per_rank.items():
            per_file: dict[int, np.ndarray] = {}
            with tracer.span(
                "io.read_plan.rank", category="io", rank=rank,
                n_ops=len(rank_plan.reads),
            ):
                for op in rank_plan.reads:
                    per_file[op.file_id] = store.read_extents(
                        op.file_id, list(op.extents)
                    )
            out[rank] = per_file
    return out
