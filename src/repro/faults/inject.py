"""Runtime glue between a schedule and the simulated machine.

A :class:`FaultInjector` binds one :class:`~repro.faults.schedule.FaultSchedule`
to one :class:`~repro.faults.report.ResilienceReport` and exposes the query
surface the machine layers call (disk model, message layer).  The injector
is where *recording* happens, so the schedule itself stays a pure function
and can be shared across runs.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.report import ResilienceReport
from repro.faults.schedule import DiskFault, FaultSchedule

__all__ = ["FaultInjector"]


class FaultInjector:
    """One run's fault source: schedule queries + report recording."""

    def __init__(
        self,
        schedule: FaultSchedule,
        report: ResilienceReport | None = None,
    ):
        self.schedule = schedule
        self.report = report if report is not None else ResilienceReport()

    @property
    def is_null(self) -> bool:
        return self.schedule.is_null

    # -- disk model ---------------------------------------------------------
    def disk_request(self, disk_id: int, serial: int) -> Optional[DiskFault]:
        fault = self.schedule.disk_request(disk_id, serial)
        if fault is not None:
            if fault.fail:
                self.report.disk_faults += 1
            if fault.slowdown > 1.0:
                self.report.disk_slowdowns += 1
        return fault

    def disk_available(self, disk_id: int, t: float) -> bool:
        ok = self.schedule.disk_available(disk_id, t)
        if not ok:
            self.report.outage_hits += 1
        return ok

    # -- message layer ------------------------------------------------------
    def message_fault(
        self, source: int, dest: int, tag: int, serial: int
    ) -> tuple[float, bool]:
        delay, drop = self.schedule.message_fault(source, dest, tag, serial)
        if delay > 0.0:
            self.report.messages_delayed += 1
        if drop:
            self.report.messages_dropped += 1
        return delay, drop

    # -- rank-level faults ---------------------------------------------------
    def straggler_factor(self, rank: int) -> float:
        return self.schedule.straggler_factor(rank)

    def kill_time(self, rank: int) -> Optional[float]:
        return self.schedule.kill_time(rank)
