"""Deterministic fault injection and resilience for S-EnKF runs.

The paper's operating point — thousands of ranks against a shared parallel
file system — is a regime where slow disks, straggler ranks and lost
member files are routine, so this package makes degraded hardware a
first-class, *replayable* input:

- :class:`FaultSchedule` — a seeded, pure-function fault plan (disk
  faults/slowdowns, storage-node outages, stragglers, message delay/drop,
  rank kills, corrupted member files).  Same seed ⇒ byte-identical faults.
- :class:`RetryPolicy` — bounded exponential backoff with deadlines,
  shared by the simulated executors and the real-file readers.
- :class:`FaultInjector` — binds a schedule to one run and records into a
  :class:`ResilienceReport` (faults injected, retries, failovers, members
  dropped, slowdown vs clean).
- :class:`DegradedResult` — the record filters return when they proceed
  with ``N - k`` surviving members instead of crashing.
- ``repro.faults.store`` — the real-file side: :class:`FaultyStore` plus
  resilient plan/ensemble readers (imported lazily to keep this package a
  light dependency for the machine layers).

See ``docs/RESILIENCE.md`` for the fault model and guarantees.
"""

from repro.faults.errors import (
    CorruptMemberError,
    DeadlockError,
    DiskFaultError,
    FaultError,
    MemberUnrecoverableError,
    TransientIOError,
)
from repro.faults.inject import FaultInjector
from repro.faults.policy import RetryPolicy
from repro.faults.report import DegradedResult, ResilienceReport
from repro.faults.schedule import DiskFault, DiskOutage, FaultSchedule

__all__ = [
    "CorruptMemberError",
    "DeadlockError",
    "DegradedResult",
    "DiskFault",
    "DiskFaultError",
    "DiskOutage",
    "FaultError",
    "FaultInjector",
    "FaultSchedule",
    "FaultyStore",
    "MemberUnrecoverableError",
    "ResilienceReport",
    "RetryPolicy",
    "TransientIOError",
    "read_ensemble_resilient",
    "read_plan_from_disk_resilient",
]

_LAZY_STORE = (
    "FaultyStore",
    "read_ensemble_resilient",
    "read_plan_from_disk_resilient",
)


def __getattr__(name):
    # The store helpers pull in numpy + repro.data; loading them lazily keeps
    # `repro.faults` importable from the low-level machine layers
    # (cluster.disk, mpisim) without creating import cycles.
    if name in _LAZY_STORE:
        from repro.faults import store as _store

        return getattr(_store, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
