"""Per-run resilience accounting: what was injected, what it cost.

A :class:`ResilienceReport` is threaded through every fault-aware path of
one run (disk model, message layer, executors, filters) and summarises the
chaos a run absorbed: faults injected, retries spent, failovers performed,
members dropped, and — once ``finalize`` is called with a clean baseline —
the slowdown the faults caused.  :class:`DegradedResult` records the
ensemble-level outcome when a filter proceeded with ``N - k`` members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DegradedResult", "ResilienceReport"]


@dataclass
class ResilienceReport:
    """Mutable counters filled in while a fault-aware run executes."""

    #: injected events, by class
    disk_faults: int = 0
    disk_slowdowns: int = 0
    outage_hits: int = 0
    messages_delayed: int = 0
    messages_dropped: int = 0
    #: responses
    retries: int = 0
    failed_ops: int = 0
    failovers: int = 0
    members_dropped: list[int] = field(default_factory=list)
    ranks_killed: list[int] = field(default_factory=list)
    #: timing (filled by finalize)
    makespan: float | None = None
    clean_makespan: float | None = None

    @property
    def faults_injected(self) -> int:
        """Total injected fault events across all classes."""
        return (
            self.disk_faults
            + self.disk_slowdowns
            + self.outage_hits
            + self.messages_delayed
            + self.messages_dropped
            + len(self.ranks_killed)
        )

    @property
    def slowdown(self) -> float | None:
        """Makespan relative to the clean run (1.0 = no overhead)."""
        if self.makespan is None or not self.clean_makespan:
            return None
        return self.makespan / self.clean_makespan

    def drop_member(self, member: int) -> None:
        if member not in self.members_dropped:
            self.members_dropped.append(member)

    def finalize(
        self, makespan: float, clean_makespan: float | None = None
    ) -> "ResilienceReport":
        self.makespan = float(makespan)
        if clean_makespan is not None:
            self.clean_makespan = float(clean_makespan)
        return self

    def summary(self) -> dict[str, float]:
        """Flat numeric view for tables and benches."""
        out = {
            "faults_injected": float(self.faults_injected),
            "disk_faults": float(self.disk_faults),
            "disk_slowdowns": float(self.disk_slowdowns),
            "outage_hits": float(self.outage_hits),
            "messages_delayed": float(self.messages_delayed),
            "messages_dropped": float(self.messages_dropped),
            "retries": float(self.retries),
            "failed_ops": float(self.failed_ops),
            "failovers": float(self.failovers),
            "members_dropped": float(len(self.members_dropped)),
            "ranks_killed": float(len(self.ranks_killed)),
        }
        if self.makespan is not None:
            out["makespan"] = self.makespan
        if self.slowdown is not None:
            out["slowdown"] = self.slowdown
        return out


@dataclass(frozen=True)
class DegradedResult:
    """Outcome of an analysis that proceeded with surviving members only."""

    n_requested: int
    surviving: tuple[int, ...]
    dropped: tuple[int, ...]
    #: multiplicative inflation applied to compensate the lost spread
    compensation: float = 1.0

    @property
    def n_surviving(self) -> int:
        return len(self.surviving)

    @property
    def degraded(self) -> bool:
        return bool(self.dropped)
