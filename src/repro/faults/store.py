"""Fault injection and resilient reading for the *real-file* path.

:class:`FaultyStore` decorates an :class:`~repro.data.store.EnsembleStore`
with schedule-driven faults: transient read failures (the first ``k``
attempts of a member raise :class:`TransientIOError`, then reads succeed —
a stalled OST recovering) and permanent corruption (the member's file is
physically truncated on disk, so even a direct read of the real bytes
raises :class:`CorruptMemberError`).

The resilient readers wrap any store — faulty or genuine — with a
:class:`~repro.faults.policy.RetryPolicy` loop and degrade instead of
crashing: members whose reads stay broken are *dropped* and reported, and
the caller gets the surviving data plus the drop list, ready for
:meth:`~repro.filters.distributed.DistributedEnKF.assimilate_degraded`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.store import EnsembleStore
from repro.faults.errors import (
    CorruptMemberError,
    MemberUnrecoverableError,
    TransientIOError,
)
from repro.faults.policy import RetryPolicy
from repro.faults.report import ResilienceReport
from repro.faults.schedule import FaultSchedule
from repro.io.plan import ReadPlan
from repro.telemetry.metrics import get_metrics
from repro.telemetry.tracer import get_tracer

__all__ = [
    "FaultyStore",
    "read_ensemble_resilient",
    "read_plan_from_disk_resilient",
]


class FaultyStore:
    """An :class:`EnsembleStore` view that injects scheduled read faults."""

    def __init__(
        self,
        inner: EnsembleStore,
        schedule: FaultSchedule,
        report: ResilienceReport | None = None,
    ):
        self.inner = inner
        self.schedule = schedule
        self.report = report if report is not None else ResilienceReport()
        self._attempts: dict[int, int] = {}
        self._write_attempts: dict[int, int] = {}
        self._truncated: set[int] = set()

    # Delegated surface (what the resilient readers and plans need).
    @property
    def grid(self):
        return self.inner.grid

    @property
    def layout(self):
        return self.inner.layout

    def member_path(self, k: int) -> Path:
        return self.inner.member_path(k)

    def n_members(self) -> int:
        return self.inner.n_members()

    def write_member(self, k: int, state: np.ndarray) -> Path:
        """Write one member, subject to scheduled torn-write faults.

        An injected write fault emulates a writer killed mid-file under
        the store's atomic protocol: a *partial* payload is left in the
        ``.tmp`` sibling (never the real member file) and the attempt
        raises :class:`TransientIOError`.  Attempts are counted per
        member, so a retrying writer succeeds once the schedule's
        ``member_write_attempts`` leading failures are spent.
        """
        attempt = self._write_attempts.get(k, 0) + 1
        self._write_attempts[k] = attempt
        if attempt <= self.schedule.member_write_failures(k):
            state = np.asarray(state, dtype=float)
            path = self.inner.member_path(k)
            torn = state[: max(1, state.size // 2)].astype("<f8").tobytes()
            with open(path.with_name(path.name + ".tmp"), "wb") as fh:
                fh.write(torn)
            self.report.disk_faults += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "fault.injected", category="fault",
                    kind="torn_write", member=k, attempt=attempt,
                )
                get_metrics().counter("fault.injected").inc()
            raise TransientIOError(
                f"injected torn write of member {k} (attempt {attempt})"
            )
        return self.inner.write_member(k, state)

    def write_ensemble(self, states: np.ndarray) -> list[Path]:
        states = np.asarray(states, dtype=float)
        if states.ndim != 2 or states.shape[0] != self.inner.grid.n:
            raise ValueError(
                f"ensemble must be ({self.inner.grid.n}, N), got {states.shape}"
            )
        # Route through write_member so scheduled write faults apply.
        return [
            self.write_member(k, states[:, k]) for k in range(states.shape[1])
        ]

    # -- fault machinery ----------------------------------------------------
    def _truncate_on_disk(self, k: int) -> None:
        """Physically corrupt member ``k``: chop the file short once."""
        if k in self._truncated:
            return
        path = self.inner.member_path(k)
        if path.exists():
            keep = max(1, path.stat().st_size // 2)
            with open(path, "r+b") as fh:
                fh.truncate(keep)
        self._truncated.add(k)

    def _check_faults(self, k: int) -> None:
        if self.schedule.member_corrupt(k):
            # Permanent: damage the real bytes so even direct reads see it.
            self._truncate_on_disk(k)
        attempt = self._attempts.get(k, 0) + 1
        self._attempts[k] = attempt
        if attempt <= self.schedule.member_failures(k):
            self.report.disk_faults += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "fault.injected", category="fault",
                    kind="transient_read", member=k, attempt=attempt,
                )
                get_metrics().counter("fault.injected").inc()
            raise TransientIOError(
                f"injected transient failure reading member {k} "
                f"(attempt {attempt})"
            )

    def read_member(self, k: int) -> np.ndarray:
        self._check_faults(k)
        return self.inner.read_member(k)

    def read_extents(self, k: int, extents) -> np.ndarray:
        self._check_faults(k)
        return self.inner.read_extents(k, extents)


def _read_with_retry(store, member: int, reader, retry: RetryPolicy,
                     report: ResilienceReport):
    """Run ``reader()`` with the retry loop; raise MemberUnrecoverableError."""
    tracer = get_tracer()
    attempt = 0
    while True:
        t0 = tracer.now()
        try:
            return reader()
        except CorruptMemberError as exc:
            # Retrying re-reads the same bad bytes: permanent, drop now.
            report.failed_ops += 1
            if tracer.enabled:
                tracer.record(
                    "fault.unrecoverable", t0, tracer.now(), category="fault",
                    member=member, error=type(exc).__name__,
                )
                get_metrics().counter("fault.members_unrecoverable").inc()
            raise MemberUnrecoverableError(member, cause=exc) from exc
        except OSError as exc:
            if not retry.should_retry(attempt):
                report.failed_ops += 1
                if tracer.enabled:
                    tracer.record(
                        "fault.unrecoverable", t0, tracer.now(),
                        category="fault", member=member,
                        error=type(exc).__name__, attempts=attempt + 1,
                    )
                    get_metrics().counter("fault.members_unrecoverable").inc()
                raise MemberUnrecoverableError(member, cause=exc) from exc
            report.retries += 1
            attempt += 1
            if tracer.enabled:
                tracer.record(
                    "fault.retry", t0, tracer.now(), category="fault",
                    member=member, attempt=attempt,
                )
                get_metrics().counter("fault.retries").inc()
            # Real-file path: retry immediately; wall-clock sleeps would only
            # slow the reproduction down (the DES paths charge simulated
            # backoff instead).


def read_plan_from_disk_resilient(
    plan: ReadPlan,
    store,
    retry: RetryPolicy | None = None,
    report: ResilienceReport | None = None,
) -> tuple[dict[int, dict[int, np.ndarray]], list[int]]:
    """Execute a :class:`ReadPlan` against real files, degrading on faults.

    Like :func:`repro.data.store.read_plan_from_disk` but each per-op read
    is retried under ``retry``; members that stay unreadable are dropped
    from *every* rank's output (an ensemble member is only usable when all
    of its pieces arrived) and returned in the drop list.
    """
    retry = retry if retry is not None else RetryPolicy()
    report = report if report is not None else ResilienceReport()
    out: dict[int, dict[int, np.ndarray]] = {}
    dropped: set[int] = set()
    for rank, rank_plan in plan.per_rank.items():
        per_file: dict[int, np.ndarray] = {}
        for op in rank_plan.reads:
            if op.file_id in dropped:
                continue
            try:
                per_file[op.file_id] = _read_with_retry(
                    store,
                    op.file_id,
                    lambda: store.read_extents(op.file_id, list(op.extents)),
                    retry,
                    report,
                )
            except MemberUnrecoverableError:
                dropped.add(op.file_id)
                report.drop_member(op.file_id)
        out[rank] = per_file
    if dropped:
        for per_file in out.values():
            for f in dropped:
                per_file.pop(f, None)
    return out, sorted(dropped)


def read_ensemble_resilient(
    store,
    n_members: int | None = None,
    retry: RetryPolicy | None = None,
    report: ResilienceReport | None = None,
) -> tuple[np.ndarray, list[int], list[int]]:
    """Read whole members with retries; return (states, surviving, dropped).

    ``states`` holds the surviving members' columns in member order — the
    exact input for a clean ``N - k`` analysis (or
    ``assimilate_degraded`` with ``failed_members`` translated to original
    indices by the caller if positional bookkeeping matters).
    """
    retry = retry if retry is not None else RetryPolicy()
    report = report if report is not None else ResilienceReport()
    total = n_members if n_members is not None else store.n_members()
    if total == 0:
        raise FileNotFoundError("no member files to read")
    columns: list[np.ndarray] = []
    surviving: list[int] = []
    dropped: list[int] = []
    for k in range(total):
        try:
            columns.append(
                _read_with_retry(
                    store, k, lambda: store.read_member(k), retry, report
                )
            )
            surviving.append(k)
        except MemberUnrecoverableError:
            dropped.append(k)
            report.drop_member(k)
    if len(surviving) < 2:
        raise MemberUnrecoverableError(
            dropped[-1] if dropped else 0,
            cause=RuntimeError(
                f"only {len(surviving)} of {total} members readable"
            ),
        )
    return np.column_stack(columns), surviving, dropped
