"""Typed exceptions raised by the fault-injection and resilience layer.

The hierarchy separates *transient* faults (worth retrying) from
*permanent* ones (give up, degrade):

- :class:`DiskFaultError` / :class:`TransientIOError` — one attempt failed;
  a :class:`~repro.faults.policy.RetryPolicy` decides whether to try again.
- :class:`CorruptMemberError` — the bytes on disk are wrong (truncated file,
  extent past EOF, short read); retrying re-reads the same bad bytes, so
  resilient readers drop the member immediately.
- :class:`MemberUnrecoverableError` — retries/failover exhausted for one
  ensemble member; filters catch this to proceed with ``N - k`` members.

:class:`~repro.sim.errors.DeadlockError` (re-exported here) is the kernel's
liveness failure: raised by watchdogs and drain hooks, not by I/O.
"""

from __future__ import annotations

from repro.sim.errors import DeadlockError

__all__ = [
    "CorruptMemberError",
    "DeadlockError",
    "DiskFaultError",
    "FaultError",
    "MemberUnrecoverableError",
    "TransientIOError",
]


class FaultError(Exception):
    """Base class for injected-fault and resilience errors."""


class DiskFaultError(FaultError):
    """A simulated disk request failed (transient fault or node outage)."""

    def __init__(self, disk_id: int, file_id: int | None = None,
                 reason: str = "transient fault"):
        self.disk_id = int(disk_id)
        self.file_id = file_id
        target = f" reading file {file_id}" if file_id is not None else ""
        super().__init__(f"disk {disk_id}{target}: {reason}")


class TransientIOError(FaultError, OSError):
    """A real-file read attempt failed in a retryable way.

    Subclasses ``OSError`` so code that already guards real I/O with
    ``except OSError`` treats injected faults exactly like genuine ones.
    """


class CorruptMemberError(FaultError, ValueError):
    """A member file's content is invalid: truncated, short, or out of range.

    Subclasses ``ValueError`` for backwards compatibility with callers that
    guarded the old untyped shape checks.
    """

    def __init__(self, member: int, detail: str):
        self.member = int(member)
        super().__init__(f"member {member} corrupt: {detail}")


class MemberUnrecoverableError(FaultError):
    """All retries (and failover, where applicable) failed for one member."""

    def __init__(self, member: int, rank: int | None = None,
                 cause: BaseException | None = None):
        self.member = int(member)
        self.rank = rank
        self.cause = cause
        where = f" on rank {rank}" if rank is not None else ""
        why = f" ({cause})" if cause is not None else ""
        super().__init__(
            f"member {member} unrecoverable{where}: retries exhausted{why}"
        )
