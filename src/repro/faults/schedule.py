"""Seeded, deterministic fault schedules.

A :class:`FaultSchedule` is a *pure function* from (seed, injection site) to
a fault decision: every query hashes the site key with the seed, so the
same schedule object — or two objects built with the same arguments —
answers every query identically, independent of query order.  That is what
makes chaos runs replayable: re-running a simulation under the same
schedule injects byte-identical faults at the same sites.

Fault classes modelled (rates are per injection site, in ``[0, 1]``):

====================  =====================================================
disk transient fault  one disk request fails after consuming its service
                      time (bad read / RPC timeout) — ``disk_fault_rate``
disk slowdown         one request is served ``disk_slowdown_factor×``
                      slower (contended RAID rebuild, thermal throttling)
storage-node outage   every request granted on a disk inside an
                      ``(disk_id, start, end)`` window fails fast
straggler rank        a compute rank's local analyses run ``factor×``
                      slower for the whole run
message delay/drop    a point-to-point message is delivered late or lost
rank kill             a processor crashes at a given simulated time
member read faults    the *real-file* path: the first ``k`` read attempts
                      of a member fail transiently, or the member is
                      permanently corrupt
member write faults   the *real-file* path: the first ``k`` write attempts
                      of a member die mid-file (a checkpoint writer torn
                      down by a crash)
worker crash          the *real-process* path: a pool worker calls ``os._exit``
                      while computing a piece (``worker_crash_rate``,
                      drawn per ``(piece, attempt)`` so a retried piece
                      can succeed)
worker hang           the *real-process* path: a pool worker sleeps
                      ``worker_hang_seconds`` before computing a piece,
                      long enough to trip the supervisor's deadline
====================  =====================================================

The zero-argument schedule (``FaultSchedule(seed)``) injects nothing and
is recognised via :attr:`is_null` so fault-aware code paths can keep the
clean fast path byte-identical to the pre-resilience behaviour.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, fields, replace
from typing import Optional

from repro.util.validation import check_nonnegative

__all__ = ["DiskFault", "DiskOutage", "FaultSchedule"]


@dataclass(frozen=True)
class DiskFault:
    """Decision for one disk request: fail it and/or slow it down."""

    fail: bool = False
    slowdown: float = 1.0


@dataclass(frozen=True)
class DiskOutage:
    """One storage node unavailable during ``[start, end)`` simulated time."""

    disk_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"outage window ends before it starts: {self.start}..{self.end}"
            )

    def covers(self, t: float) -> bool:
        return self.start <= t < self.end


#: descriptive engine-metadata keys newer writers may annotate alongside a
#: serialized schedule (executor strategy / array backend of the annotated
#: run); not fault classes, so ``from_dict`` ignores them instead of
#: raising the unknown-regime error.
_METADATA_KEYS = ("strategy", "backend")


def _rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


@dataclass(frozen=True)
class FaultSchedule:
    """Deterministic fault plan for one run (see module docstring)."""

    seed: int
    #: probability one disk request fails after its service time
    disk_fault_rate: float = 0.0
    #: probability one disk request is served ``disk_slowdown_factor`` slower
    disk_slowdown_rate: float = 0.0
    disk_slowdown_factor: float = 4.0
    #: storage-node outage windows
    outages: tuple[DiskOutage, ...] = ()
    #: ``(world_rank, factor)`` — compute ranks slowed for the whole run
    stragglers: tuple[tuple[int, float], ...] = ()
    #: probability one message is delayed by ``message_delay`` seconds
    message_delay_rate: float = 0.0
    message_delay: float = 1e-3
    #: probability one message is silently lost in transit
    message_drop_rate: float = 0.0
    #: ``(world_rank, kill_time)`` — processors crashing mid-run
    killed_ranks: tuple[tuple[int, float], ...] = ()
    #: real-file path: probability a member's reads fail transiently, and
    #: how many attempts fail before one succeeds
    member_fault_rate: float = 0.0
    member_fault_attempts: int = 2
    #: real-file path: probability a member file is permanently corrupt
    member_corrupt_rate: float = 0.0
    #: real-file path: probability a member's *writes* fail (a checkpoint
    #: writer dying mid-file), and how many attempts fail before one lands
    member_write_fault_rate: float = 0.0
    member_write_attempts: int = 1
    #: real-process path: probability a pool worker crashes (``os._exit``)
    #: while computing one piece, drawn per ``(piece, attempt)``
    worker_crash_rate: float = 0.0
    #: real-process path: probability a pool worker wedges (sleeps
    #: ``worker_hang_seconds``) before computing one piece
    worker_hang_rate: float = 0.0
    worker_hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        _rate("disk_fault_rate", self.disk_fault_rate)
        _rate("disk_slowdown_rate", self.disk_slowdown_rate)
        _rate("message_delay_rate", self.message_delay_rate)
        _rate("message_drop_rate", self.message_drop_rate)
        _rate("member_fault_rate", self.member_fault_rate)
        _rate("member_corrupt_rate", self.member_corrupt_rate)
        _rate("member_write_fault_rate", self.member_write_fault_rate)
        _rate("worker_crash_rate", self.worker_crash_rate)
        _rate("worker_hang_rate", self.worker_hang_rate)
        check_nonnegative("worker_hang_seconds", self.worker_hang_seconds)
        check_nonnegative("member_write_attempts", self.member_write_attempts)
        if self.disk_slowdown_factor < 1.0:
            raise ValueError(
                f"disk_slowdown_factor must be >= 1, got {self.disk_slowdown_factor}"
            )
        check_nonnegative("message_delay", self.message_delay)
        check_nonnegative("member_fault_attempts", self.member_fault_attempts)
        for rank, factor in self.stragglers:
            if factor < 1.0:
                raise ValueError(f"straggler factor must be >= 1, got {factor}")
        # Normalise to tuples so schedules built from lists hash/compare equal.
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(
            self, "stragglers", tuple((int(r), float(f)) for r, f in self.stragglers)
        )
        object.__setattr__(
            self,
            "killed_ranks",
            tuple((int(r), float(t)) for r, t in self.killed_ranks),
        )

    def with_(self, **kwargs) -> "FaultSchedule":
        return replace(self, **kwargs)

    # -- determinism core ---------------------------------------------------
    def _unit(self, kind: str, *key) -> float:
        """Uniform draw in [0, 1) as a pure function of (seed, kind, key)."""
        h = hashlib.blake2b(
            repr((kind,) + key).encode(),
            digest_size=8,
            key=struct.pack("<q", self.seed & 0x7FFFFFFFFFFFFFFF),
        )
        return int.from_bytes(h.digest(), "big") / 2.0**64

    @property
    def is_null(self) -> bool:
        """True when this schedule can never inject anything."""
        return (
            self.disk_fault_rate == 0.0
            and self.disk_slowdown_rate == 0.0
            and not self.outages
            and not self.stragglers
            and self.message_delay_rate == 0.0
            and self.message_drop_rate == 0.0
            and not self.killed_ranks
            and self.member_fault_rate == 0.0
            and self.member_corrupt_rate == 0.0
            and self.member_write_fault_rate == 0.0
            and self.worker_crash_rate == 0.0
            and self.worker_hang_rate == 0.0
        )

    @property
    def has_worker_faults(self) -> bool:
        """True when pool workers may be made to crash or hang."""
        return self.worker_crash_rate > 0.0 or self.worker_hang_rate > 0.0

    # -- query surface ------------------------------------------------------
    def disk_request(self, disk_id: int, serial: int) -> Optional[DiskFault]:
        """Fault decision for the ``serial``-th request issued to a disk."""
        fail = (
            self.disk_fault_rate > 0.0
            and self._unit("disk_fail", disk_id, serial) < self.disk_fault_rate
        )
        slow = (
            self.disk_slowdown_rate > 0.0
            and self._unit("disk_slow", disk_id, serial) < self.disk_slowdown_rate
        )
        if not fail and not slow:
            return None
        return DiskFault(
            fail=fail, slowdown=self.disk_slowdown_factor if slow else 1.0
        )

    def disk_available(self, disk_id: int, t: float) -> bool:
        """False while ``disk_id`` sits inside an outage window at time ``t``."""
        return not any(
            o.disk_id == disk_id and o.covers(t) for o in self.outages
        )

    def straggler_factor(self, rank: int) -> float:
        """Compute-slowdown multiplier for a rank (1.0 for healthy ranks)."""
        for r, factor in self.stragglers:
            if r == rank:
                return factor
        return 1.0

    def message_fault(
        self, source: int, dest: int, tag: int, serial: int
    ) -> tuple[float, bool]:
        """(extra delay, dropped?) for the ``serial``-th message of a run."""
        delay = 0.0
        if (
            self.message_delay_rate > 0.0
            and self._unit("msg_delay", source, dest, tag, serial)
            < self.message_delay_rate
        ):
            delay = self.message_delay
        drop = (
            self.message_drop_rate > 0.0
            and self._unit("msg_drop", source, dest, tag, serial)
            < self.message_drop_rate
        )
        return delay, drop

    def kill_time(self, rank: int) -> Optional[float]:
        """Simulated time at which ``rank`` crashes, or None."""
        for r, t in self.killed_ranks:
            if r == rank:
                return t
        return None

    def member_failures(self, member: int) -> int:
        """How many leading read attempts of a member fail transiently."""
        if (
            self.member_fault_rate > 0.0
            and self._unit("member_fault", member) < self.member_fault_rate
        ):
            return self.member_fault_attempts
        return 0

    def member_corrupt(self, member: int) -> bool:
        """True when a member file is permanently corrupt on disk."""
        return (
            self.member_corrupt_rate > 0.0
            and self._unit("member_corrupt", member) < self.member_corrupt_rate
        )

    def member_write_failures(self, member: int) -> int:
        """How many leading write attempts of a member die mid-file."""
        if (
            self.member_write_fault_rate > 0.0
            and self._unit("member_write", member) < self.member_write_fault_rate
        ):
            return self.member_write_attempts
        return 0

    def worker_crash(self, piece: int, attempt: int = 0) -> bool:
        """Does the worker computing ``piece`` crash on this ``attempt``?

        Keyed on ``(piece, attempt)`` — not the piece alone — so the
        supervisor's resubmission of a crashed piece draws fresh and the
        recovery machinery is actually exercised rather than looping on a
        deterministic always-crash.
        """
        return (
            self.worker_crash_rate > 0.0
            and self._unit("worker_crash", piece, attempt)
            < self.worker_crash_rate
        )

    def worker_hang(self, piece: int, attempt: int = 0) -> float:
        """Seconds the worker computing ``piece`` wedges for (0 = healthy)."""
        if (
            self.worker_hang_rate > 0.0
            and self._unit("worker_hang", piece, attempt)
            < self.worker_hang_rate
        ):
            return self.worker_hang_seconds
        return 0.0

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict capturing the full chaos regime.

        Checkpoint manifests persist this so a resumed campaign replays
        the *exact* fault plan of the interrupted run;
        :meth:`from_dict` round-trips it decision-for-decision (the
        property tests pin ``fingerprint`` equality).
        """
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "outages":
                value = [
                    {"disk_id": o.disk_id, "start": o.start, "end": o.end}
                    for o in value
                ]
            elif isinstance(value, tuple):
                value = [list(item) for item in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`to_dict` output (or parsed JSON).

        Tolerant of *old* payloads: keys a newer schedule grew (e.g. the
        worker-fault knobs) may be absent and default to 0 / disabled, so
        checkpoint manifests cut before an upgrade keep resuming.
        Descriptive engine-metadata keys (``strategy``, ``backend``) that
        newer writers annotate alongside the schedule are ignored in
        either direction — they describe *how* the annotated run
        executed, not which faults to inject.  Keys this version does
        not otherwise know remain a hard error — silently dropping an
        unknown fault class would replay a *different* chaos regime than
        the manifest records.
        """
        data = dict(data)
        for meta_key in _METADATA_KEYS:
            data.pop(meta_key, None)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FaultSchedule fields: {unknown}")
        if "outages" in data:
            data["outages"] = tuple(
                o if isinstance(o, DiskOutage) else DiskOutage(**o)
                for o in data["outages"]
            )
        return cls(**data)

    # -- reproducibility ----------------------------------------------------
    def fingerprint(self, n_samples: int = 512) -> str:
        """Stable digest of the configuration plus a decision-stream sample.

        Two schedules with equal fingerprints inject identical faults; the
        property tests assert fingerprints are byte-identical under the
        same seed and (overwhelmingly) distinct under different seeds.
        """
        h = hashlib.blake2b(digest_size=16)
        for f in fields(self):
            h.update(repr((f.name, getattr(self, f.name))).encode())
        for i in range(n_samples):
            h.update(repr(self.disk_request(i % 7, i)).encode())
            h.update(repr(self.message_fault(i % 5, (i + 1) % 5, i % 3, i)).encode())
            h.update(struct.pack("<i", self.member_failures(i)))
            h.update(struct.pack("<i", self.member_write_failures(i)))
            h.update(b"\x01" if self.member_corrupt(i) else b"\x00")
            h.update(b"\x01" if self.worker_crash(i, i % 3) else b"\x00")
            h.update(struct.pack("<d", self.worker_hang(i, i % 3)))
            h.update(b"\x01" if self.disk_available(i % 7, float(i)) else b"\x00")
        return h.hexdigest()
