"""Retry policies: bounded exponential backoff with per-op deadlines.

One :class:`RetryPolicy` is shared by the simulated I/O executors (backoff
delays are *simulated* time) and the real-file readers (attempts retried
immediately — sleeping a wall clock inside a reproduction run buys
nothing).  Deterministic by construction: no jitter, so a retried run under
a fixed :class:`~repro.faults.schedule.FaultSchedule` replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_nonnegative

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff.

    Attempt ``a`` (0-based) that fails waits ``min(base_delay *
    multiplier**a, max_delay)`` before attempt ``a + 1``, up to
    ``max_retries`` retries; ``deadline`` additionally caps the total time
    (simulated, measured from the first attempt) an operation may spend
    including retries.
    """

    max_retries: int = 3
    base_delay: float = 1e-3
    multiplier: float = 2.0
    max_delay: float = 0.1
    deadline: float | None = None

    def __post_init__(self) -> None:
        check_nonnegative("max_retries", self.max_retries)
        check_nonnegative("base_delay", self.base_delay)
        check_nonnegative("max_delay", self.max_delay)
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def with_(self, **kwargs) -> "RetryPolicy":
        return replace(self, **kwargs)

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based)."""
        check_nonnegative("attempt", attempt)
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def should_retry(self, attempt: int, elapsed: float = 0.0) -> bool:
        """May failed attempt ``attempt`` be retried, ``elapsed`` in already?"""
        if attempt >= self.max_retries:
            return False
        if self.deadline is not None and elapsed + self.delay(attempt) >= self.deadline:
            return False
        return True

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail on the first error (max_retries=0)."""
        return cls(max_retries=0)
