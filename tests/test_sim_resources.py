"""Tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


def run_users(env, resource, service_times):
    """Spawn one holder process per service time; return completion log."""
    log = []

    def user(env, i, service):
        with resource.request() as req:
            yield req
            start = env.now
            yield env.timeout(service)
            log.append((i, start, env.now))

    for i, service in enumerate(service_times):
        env.process(user(env, i, service))
    env.run()
    return log


def test_capacity_one_serialises():
    env = Environment()
    res = Resource(env, capacity=1)
    log = run_users(env, res, [2.0, 2.0, 2.0])
    assert [(start, end) for _, start, end in log] == [
        (0.0, 2.0),
        (2.0, 4.0),
        (4.0, 6.0),
    ]


def test_capacity_two_runs_pairs():
    env = Environment()
    res = Resource(env, capacity=2)
    log = run_users(env, res, [2.0, 2.0, 2.0, 2.0])
    ends = sorted(end for _, _, end in log)
    assert ends == [2.0, 2.0, 4.0, 4.0]


def test_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    log = run_users(env, res, [1.0] * 5)
    assert [i for i, _, _ in log] == [0, 1, 2, 3, 4]


def test_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def observer(env, out):
        yield env.timeout(1.0)
        out.append((res.count, res.queue_length))

    out = []
    env.process(holder(env))
    env.process(holder(env))
    env.process(observer(env, out))
    env.run()
    assert out == [(1, 1)]


def test_release_without_holding_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()  # granted immediately
    req.release()
    with pytest.raises(SimulationError):
        req.release()


def test_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    second.cancel()
    assert res.queue_length == 0
    first.release()


def test_cancel_nonwaiting_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    with pytest.raises(SimulationError):
        req.cancel()


def test_context_manager_releases_on_exit():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, i):
        with res.request() as req:
            yield req
            yield env.timeout(1.0)
        order.append((i, env.now))

    env.process(user(env, 0))
    env.process(user(env, 1))
    env.run()
    assert order == [(0, 1.0), (1, 2.0)]


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield env.timeout(1.0)
        yield store.put("item")

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(1.0, "item")]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put(99)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(5.0, 99)]


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_bounded_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env):
        yield store.put("a")
        times.append(("a-in", env.now))
        yield store.put("b")
        times.append(("b-in", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("a-in", 0.0) in times
    assert ("b-in", 3.0) in times


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
