"""Tests for the LETKF filter class."""

import numpy as np
import pytest

from repro.cluster import MachineSpec
from repro.core import Decomposition, Grid, ObservationNetwork
from repro.filters import LETKF, PerfScenario
from repro.models import correlated_ensemble


def problem(seed=0):
    grid = Grid(n_x=16, n_y=8, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(seed)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(grid, 14,
                                                  length_scale_km=4.0,
                                                  rng=rng)
    net = ObservationNetwork.random(grid, m=50, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=3, eta=3)
    return grid, truth, states, net, y, decomp


class TestLetkf:
    def test_reduces_error_at_observed_points(self):
        _, truth, states, net, y, decomp = problem()
        xa = LETKF(inflation=1.0).assimilate(decomp, states, net, y)
        obs = net.flat_locations
        err_b = np.linalg.norm(states.mean(axis=1)[obs] - truth[obs])
        err_a = np.linalg.norm(xa.mean(axis=1)[obs] - truth[obs])
        assert err_a < err_b

    def test_deterministic_ignores_rng(self):
        _, _, states, net, y, decomp = problem()
        f = LETKF()
        a = f.assimilate(decomp, states, net, y, rng=1)
        b = f.assimilate(decomp, states, net, y, rng=999)
        assert np.array_equal(a, b)

    def test_reduces_spread(self):
        _, _, states, net, y, decomp = problem()
        xa = LETKF().assimilate(decomp, states, net, y)
        assert xa.std(axis=1).mean() < states.std(axis=1).mean()

    def test_inflation_parameter(self):
        _, _, states, net, y, decomp = problem()
        plain = LETKF(inflation=1.0).assimilate(decomp, states, net, y)
        inflated = LETKF(inflation=1.4).assimilate(decomp, states, net, y)
        assert inflated.std(axis=1).mean() > plain.std(axis=1).mean()

    def test_shape_mismatch(self):
        _, _, states, net, y, decomp = problem()
        with pytest.raises(ValueError):
            LETKF().assimilate(decomp, states[:10], net, y)

    def test_invalid_inflation(self):
        with pytest.raises(ValueError):
            LETKF(inflation=0.0)

    def test_simulate_uses_block_workflow(self):
        scenario = PerfScenario(n_x=48, n_y=24, n_members=8, h_bytes=240,
                                xi=2, eta=1)
        report = LETKF.simulate(MachineSpec.small_cluster(), scenario,
                                n_sdx=4, n_sdy=3)
        assert report.filter_name == "letkf"
        assert report.total_time > 0
