"""Tests for the baseline cost estimates vs the simulator."""

import pytest

from repro.cluster import MachineSpec
from repro.costmodel.baselines import lenkf_estimate, penkf_estimate
from repro.filters import PerfScenario, simulate_lenkf, simulate_penkf


def scenario():
    return PerfScenario(n_x=96, n_y=48, n_members=8, h_bytes=240, xi=2, eta=1)


def spec():
    return MachineSpec.small_cluster()


class TestPEnKFEstimate:
    def test_components_positive(self):
        est = penkf_estimate(spec(), scenario(), n_sdx=8, n_sdy=4)
        assert est.read > 0 and est.compute > 0 and est.comm == 0.0
        assert est.total == pytest.approx(est.read + est.compute)

    def test_read_grows_with_n_sdx(self):
        s = scenario()
        a = penkf_estimate(spec(), s, n_sdx=4, n_sdy=4).read
        b = penkf_estimate(spec(), s, n_sdx=16, n_sdy=4).read
        assert b > a

    def test_compute_shrinks_with_ranks(self):
        s = scenario()
        a = penkf_estimate(spec(), s, n_sdx=4, n_sdy=4).compute
        b = penkf_estimate(spec(), s, n_sdx=16, n_sdy=4).compute
        assert b == pytest.approx(a / 4)

    def test_estimate_is_a_lower_bound_within_factor_of_sim(self):
        """Throughput bound <= measured <= ~3x bound + compute."""
        s = scenario()
        m = spec()
        for n_sdx, n_sdy in [(8, 4), (16, 4), (24, 4)]:
            est = penkf_estimate(m, s, n_sdx, n_sdy)
            sim = simulate_penkf(m, s, n_sdx, n_sdy)
            assert sim.total_time >= 0.9 * est.total
            assert sim.total_time <= 3.0 * est.read + 1.5 * est.compute + 0.1

    def test_predicts_fig13_regression_shape(self):
        """The estimate itself shows the interior minimum of Fig. 13
        (on the calibrated reduced scenario, where the crossover lives)."""
        s = PerfScenario.small()
        m = spec()
        totals = [
            penkf_estimate(m, s, n_sdx, 10).total
            for n_sdx in (12, 24, 45, 60, 90, 120, 180)
        ]
        best = totals.index(min(totals))
        assert 0 < best < len(totals) - 1


class TestLEnKFEstimate:
    def test_components_positive(self):
        est = lenkf_estimate(spec(), scenario(), n_sdx=8, n_sdy=4)
        assert est.read > 0 and est.comm > 0 and est.compute > 0

    def test_comm_linear_in_ranks(self):
        s = scenario()
        a = lenkf_estimate(spec(), s, n_sdx=4, n_sdy=4)
        b = lenkf_estimate(spec(), s, n_sdx=16, n_sdy=4)
        # 4x the ranks, ~1/4 the block size: comm dominated by alpha term
        # grows; with beta term it grows sublinearly but must grow.
        assert b.comm > a.comm * 0.9

    def test_read_independent_of_ranks(self):
        s = scenario()
        a = lenkf_estimate(spec(), s, n_sdx=4, n_sdy=4).read
        b = lenkf_estimate(spec(), s, n_sdx=16, n_sdy=4).read
        assert a == pytest.approx(b)

    def test_tracks_simulation_within_factor(self):
        s = scenario()
        m = spec()
        est = lenkf_estimate(m, s, n_sdx=8, n_sdy=4)
        sim = simulate_lenkf(m, s, n_sdx=8, n_sdy=4)
        assert 0.5 * est.total <= sim.total_time <= 2.0 * est.total
