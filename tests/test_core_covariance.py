"""Tests for covariance estimation and the modified Cholesky inverse."""

import numpy as np
import pytest

from repro.core import Grid, sample_covariance, tapered_covariance
from repro.core.covariance import anomalies, distance_matrix
from repro.core.cholesky import modified_cholesky_inverse, neighbour_predecessors


def ar1_samples(n, n_members, rho=0.8, rng=None):
    """Samples from an AR(1) field: tridiagonal precision, known covariance."""
    rng = np.random.default_rng(rng)
    cov = rho ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    chol = np.linalg.cholesky(cov)
    return cov, chol @ rng.standard_normal((n, n_members))


class TestSampleCovariance:
    def test_anomalies_zero_mean(self):
        x = np.random.default_rng(0).normal(size=(5, 7))
        assert np.allclose(anomalies(x).mean(axis=1), 0.0)

    def test_anomalies_rejects_1d(self):
        with pytest.raises(ValueError):
            anomalies(np.zeros(5))

    def test_matches_numpy_cov(self):
        x = np.random.default_rng(1).normal(size=(4, 30))
        assert np.allclose(sample_covariance(x), np.cov(x, ddof=1))

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            sample_covariance(np.zeros((4, 1)))

    def test_converges_to_truth(self):
        cov, x = ar1_samples(6, 20000, rng=2)
        est = sample_covariance(x)
        assert np.abs(est - cov).max() < 0.06

    def test_rank_deficient_when_n_small(self):
        """The paper's motivation: N << n makes B rank-deficient."""
        _, x = ar1_samples(20, 5, rng=3)
        b = sample_covariance(x)
        rank = np.linalg.matrix_rank(b, tol=1e-10)
        assert rank <= 4  # at most N-1


class TestDistanceAndTaper:
    def test_distance_matrix_periodic(self):
        g = Grid(n_x=10, n_y=5, dx_km=1.0, dy_km=1.0)
        ix = np.array([0, 9])
        iy = np.array([0, 0])
        d = distance_matrix(g, ix, iy)
        assert d[0, 1] == pytest.approx(1.0)

    def test_taper_zeroes_long_range(self):
        g = Grid(n_x=50, n_y=1, dx_km=1.0, dy_km=1.0, periodic_x=False)
        _, x = ar1_samples(50, 10, rng=4)
        ix = np.arange(50)
        iy = np.zeros(50, dtype=int)
        tapered = tapered_covariance(x, g, ix, iy, support_km=5.0)
        assert tapered[0, 20] == 0.0
        assert tapered[0, 0] > 0.0

    def test_taper_preserves_diagonal(self):
        g = Grid(n_x=30, n_y=1, periodic_x=False)
        _, x = ar1_samples(30, 10, rng=5)
        raw = sample_covariance(x)
        tapered = tapered_covariance(
            x, g, np.arange(30), np.zeros(30, dtype=int), support_km=5.0
        )
        assert np.allclose(np.diag(tapered), np.diag(raw))

    def test_taper_dimension_mismatch(self):
        g = Grid(n_x=30, n_y=1)
        _, x = ar1_samples(30, 10)
        with pytest.raises(ValueError):
            tapered_covariance(x, g, np.arange(10), np.zeros(10), support_km=5.0)


class TestNeighbourPredecessors:
    def test_only_preceding_indices(self):
        g = Grid(n_x=10, n_y=1, periodic_x=False)
        preds = neighbour_predecessors(
            g, np.arange(10), np.zeros(10, dtype=int), radius_km=2.0
        )
        assert list(preds[0]) == []
        assert list(preds[3]) == [1, 2]
        assert all(np.all(p < i) for i, p in enumerate(preds))

    def test_periodic_wraparound_neighbours(self):
        g = Grid(n_x=10, n_y=1, periodic_x=True)
        preds = neighbour_predecessors(
            g, np.arange(10), np.zeros(10, dtype=int), radius_km=1.5
        )
        # Point 9 is 1 away from point 0 around the seam.
        assert 0 in preds[9]

    def test_invalid_radius(self):
        g = Grid(n_x=4, n_y=1)
        with pytest.raises(ValueError):
            neighbour_predecessors(g, np.arange(4), np.zeros(4), radius_km=0.0)


class TestModifiedCholesky:
    def local_grid(self, n):
        return Grid(n_x=n, n_y=1, dx_km=1.0, dy_km=1.0, periodic_x=False)

    def test_output_spd(self):
        n = 15
        _, x = ar1_samples(n, 8, rng=6)
        g = self.local_grid(n)
        binv = modified_cholesky_inverse(
            x, g, np.arange(n), np.zeros(n, dtype=int), radius_km=3.0
        )
        assert np.allclose(binv, binv.T)
        assert np.linalg.eigvalsh(binv).min() > 0

    def test_spd_even_when_members_fewer_than_predecessors(self):
        n = 30
        _, x = ar1_samples(n, 4, rng=7)  # N=4 << stencil sizes
        g = self.local_grid(n)
        binv = modified_cholesky_inverse(
            x, g, np.arange(n), np.zeros(n, dtype=int), radius_km=10.0
        )
        assert np.linalg.eigvalsh(binv).min() > 0

    def test_converges_to_true_precision_ar1(self):
        """AR(1) precision is tridiagonal; radius>=1 captures it exactly."""
        n = 12
        cov, x = ar1_samples(n, 60000, rho=0.6, rng=8)
        g = self.local_grid(n)
        binv = modified_cholesky_inverse(
            x, g, np.arange(n), np.zeros(n, dtype=int),
            radius_km=1.5, ridge=1e-12,
        )
        true_prec = np.linalg.inv(cov)
        # Relative Frobenius error should be small with many members.
        rel = np.linalg.norm(binv - true_prec) / np.linalg.norm(true_prec)
        assert rel < 0.05

    def test_beats_sample_inverse_when_rank_deficient(self):
        """With N < n the sample covariance is singular and its pseudo-inverse
        is a poor precision estimate; modified Cholesky stays close."""
        n = 25
        cov, x = ar1_samples(n, 20, rho=0.7, rng=9)
        g = self.local_grid(n)
        binv = modified_cholesky_inverse(
            x, g, np.arange(n), np.zeros(n, dtype=int), radius_km=2.0
        )
        true_prec = np.linalg.inv(cov)
        sample_pinv = np.linalg.pinv(sample_covariance(x))
        err_mc = np.linalg.norm(binv - true_prec)
        err_sp = np.linalg.norm(sample_pinv - true_prec)
        assert err_mc < err_sp

    def test_zero_variance_component_floored(self):
        x = np.zeros((5, 6))
        x[0] = np.random.default_rng(10).normal(size=6)
        g = self.local_grid(5)
        binv = modified_cholesky_inverse(
            x, g, np.arange(5), np.zeros(5, dtype=int), radius_km=1.5
        )
        assert np.all(np.isfinite(binv))
        assert np.linalg.eigvalsh(binv).min() > 0

    def test_rejects_one_member(self):
        g = self.local_grid(3)
        with pytest.raises(ValueError):
            modified_cholesky_inverse(
                np.zeros((3, 1)), g, np.arange(3), np.zeros(3), radius_km=1.0
            )

    def test_rejects_coord_mismatch(self):
        g = self.local_grid(3)
        with pytest.raises(ValueError):
            modified_cholesky_inverse(
                np.zeros((3, 4)), g, np.arange(2), np.zeros(2), radius_km=1.0
            )

    def test_localization_sparsifies_l(self):
        """Radius controls the conditional stencil: small r -> near-diagonal."""
        n = 20
        _, x = ar1_samples(n, 50, rng=11)
        g = self.local_grid(n)
        preds = neighbour_predecessors(
            g, np.arange(n), np.zeros(n, dtype=int), radius_km=1.5
        )
        assert max(len(p) for p in preds) <= 1
