"""Tests for the simulated reanalysis campaigns."""

import pytest

from repro.cluster import MachineSpec
from repro.filters import CycleCosts, PerfScenario, ReanalysisCampaign


def campaign(**kw):
    scenario = PerfScenario(n_x=48, n_y=24, n_members=8, h_bytes=240,
                            xi=2, eta=1)
    spec = MachineSpec.small_cluster()
    costs = CycleCosts(model_step_cost=1e-6, steps_per_cycle=kw.pop("steps", 5))
    return ReanalysisCampaign(spec, scenario, costs=costs, **kw)


class TestCycleCosts:
    def test_forecast_scales_inverse_with_processors(self):
        costs = CycleCosts(model_step_cost=1e-6, steps_per_cycle=10)
        s = PerfScenario.small()
        assert costs.forecast_time(s, 200) == pytest.approx(
            costs.forecast_time(s, 100) / 2
        )

    def test_output_time_positive(self):
        costs = CycleCosts()
        assert costs.output_time(MachineSpec.small_cluster(),
                                 PerfScenario.small()) > 0

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            CycleCosts(model_step_cost=-1.0)
        with pytest.raises(ValueError):
            CycleCosts(steps_per_cycle=0)


class TestCampaign:
    def test_penkf_report_structure(self):
        rep = campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=10)
        assert rep.filter_name == "p-enkf"
        assert rep.n_cycles == 10
        assert rep.cycle_time == pytest.approx(
            rep.forecast_time + rep.output_time + rep.assimilation_time
        )
        assert rep.total_time == pytest.approx(10 * rep.cycle_time)
        assert 0 < rep.assimilation_share < 1

    def test_senkf_report_has_tuning_info(self):
        rep = campaign().run_senkf(n_p=12, n_cycles=5)
        assert rep.filter_name == "s-enkf"
        assert rep.extra["c1"] + rep.extra["c2"] <= 12

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=0)

    def test_campaign_speedup_positive(self):
        p, s, speedup = campaign().speedup(n_sdx=4, n_sdy=3, n_cycles=8)
        assert speedup > 0
        assert p.n_p == 12 and s.n_p == 12

    def test_campaign_speedup_bounded_by_assimilation_speedup(self):
        """Amdahl: the campaign gains at most the assimilation-phase gain."""
        p, s, speedup = campaign().speedup(n_sdx=8, n_sdy=3, n_cycles=8)
        assim_speedup = p.assimilation_time / s.assimilation_time
        if assim_speedup > 1:
            assert speedup <= assim_speedup + 1e-9
