"""Tests for the simulated reanalysis campaigns."""

import pytest

from repro.cluster import MachineSpec
from repro.filters import CycleCosts, PerfScenario, ReanalysisCampaign


def campaign(**kw):
    scenario = PerfScenario(n_x=48, n_y=24, n_members=8, h_bytes=240,
                            xi=2, eta=1)
    spec = MachineSpec.small_cluster()
    costs = CycleCosts(model_step_cost=1e-6, steps_per_cycle=kw.pop("steps", 5))
    return ReanalysisCampaign(spec, scenario, costs=costs, **kw)


class TestCycleCosts:
    def test_forecast_scales_inverse_with_processors(self):
        costs = CycleCosts(model_step_cost=1e-6, steps_per_cycle=10)
        s = PerfScenario.small()
        assert costs.forecast_time(s, 200) == pytest.approx(
            costs.forecast_time(s, 100) / 2
        )

    def test_output_time_positive(self):
        costs = CycleCosts()
        assert costs.output_time(MachineSpec.small_cluster(),
                                 PerfScenario.small()) > 0

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            CycleCosts(model_step_cost=-1.0)
        with pytest.raises(ValueError):
            CycleCosts(steps_per_cycle=0)


class TestCampaign:
    def test_penkf_report_structure(self):
        rep = campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=10)
        assert rep.filter_name == "p-enkf"
        assert rep.n_cycles == 10
        assert rep.cycle_time == pytest.approx(
            rep.forecast_time + rep.output_time + rep.assimilation_time
        )
        assert rep.total_time == pytest.approx(10 * rep.cycle_time)
        assert 0 < rep.assimilation_share < 1

    def test_senkf_report_has_tuning_info(self):
        rep = campaign().run_senkf(n_p=12, n_cycles=5)
        assert rep.filter_name == "s-enkf"
        assert rep.extra["c1"] + rep.extra["c2"] <= 12

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=0)

    def test_campaign_speedup_positive(self):
        p, s, speedup = campaign().speedup(n_sdx=4, n_sdy=3, n_cycles=8)
        assert speedup > 0
        assert p.n_p == 12 and s.n_p == 12

    def test_campaign_speedup_bounded_by_assimilation_speedup(self):
        """Amdahl: the campaign gains at most the assimilation-phase gain."""
        p, s, speedup = campaign().speedup(n_sdx=8, n_sdy=3, n_cycles=8)
        assim_speedup = p.assimilation_time / s.assimilation_time
        if assim_speedup > 1:
            assert speedup <= assim_speedup + 1e-9


class TestCheckpointPricing:
    """Checkpoint I/O priced as a second streaming write + Young economics."""

    def test_default_campaign_is_checkpoint_free(self):
        rep = campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=10)
        assert rep.checkpoint_interval is None
        assert rep.checkpoint_time_per_cycle == 0.0
        assert rep.checkpoint_overhead == 0.0
        # cycle_time unchanged by the new machinery for old callers
        assert rep.cycle_time == pytest.approx(
            rep.forecast_time + rep.output_time + rep.assimilation_time
        )

    def test_checkpointed_cycle_pays_amortised_commit(self):
        c = campaign()
        free = c.run_senkf(n_p=12, n_cycles=10)
        ckpt = c.run_senkf(n_p=12, n_cycles=10, checkpoint_interval=5)
        assert ckpt.checkpoint_time == pytest.approx(
            c.costs.checkpoint_time(c.spec, c.scenario)
        )
        # same bytes, same streaming write as the background output
        assert ckpt.checkpoint_time == pytest.approx(
            c.costs.output_time(c.spec, c.scenario)
        )
        assert ckpt.checkpoint_time_per_cycle == pytest.approx(
            ckpt.checkpoint_time / 5
        )
        assert ckpt.cycle_time == pytest.approx(
            free.cycle_time + ckpt.checkpoint_time / 5
        )
        assert ckpt.checkpoint_overhead == pytest.approx(
            (ckpt.checkpoint_time / 5) / free.cycle_time
        )

    def test_overhead_shrinks_with_interval(self):
        c = campaign()
        overheads = [
            c.run_penkf(n_sdx=4, n_sdy=3, n_cycles=5,
                        checkpoint_interval=k).checkpoint_overhead
            for k in (1, 2, 5, 10)
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            campaign().run_penkf(n_sdx=4, n_sdy=3, n_cycles=5,
                                 checkpoint_interval=0)

    def test_young_interval_formula(self):
        from repro.checkpoint.costs import young_interval

        # k*·T = sqrt(2·C·MTTF): with T=2, C=1, MTTF=800 -> k* = 40/2 = 20
        assert young_interval(2.0, 1.0, 800.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            young_interval(0.0, 1.0, 800.0)

    def test_expected_overhead_formula(self):
        from repro.checkpoint.costs import expected_overhead

        # commit-only: C/(k·T) = 1/(5·2) = 0.1
        assert expected_overhead(2.0, 1.0, 5) == pytest.approx(0.1)
        # with failures: + (k·T + C)/(2·MTTF) = 11/200
        assert expected_overhead(2.0, 1.0, 5, mttf=100.0) == pytest.approx(
            0.1 + 11.0 / 200.0
        )

    def test_young_optimum_minimises_expected_overhead(self):
        from repro.checkpoint.costs import expected_overhead, young_interval

        t, c, mttf = 3.0, 0.7, 5000.0
        k_star = young_interval(t, c, mttf)
        at_opt = expected_overhead(t, c, k_star, mttf)
        for k in (k_star / 3, k_star / 1.5, k_star * 1.5, k_star * 3):
            assert at_opt <= expected_overhead(t, c, k, mttf) + 1e-12

    def test_tradeoff_table_structure(self):
        c = campaign()
        rep = c.run_senkf(n_p=12, n_cycles=10, checkpoint_interval=5)
        out = c.checkpoint_tradeoff(rep, mttf=3600.0, intervals=(1, 5, 20))
        assert out["checkpoint_time"] == pytest.approx(rep.checkpoint_time)
        assert out["optimal_interval"] > 0
        assert [r["interval"] for r in out["rows"]] == [1, 5, 20]
        for row in out["rows"]:
            assert row["overhead"] >= row["commit_share"] > 0
