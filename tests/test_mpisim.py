"""Tests for the simulated MPI layer."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.mpisim import ANY_SOURCE, ANY_TAG, Communicator
from repro.sim.errors import SimulationError


def make_comm(size, alpha=1e-3, beta=1e-6):
    machine = Machine(MachineSpec(alpha=alpha, beta=beta))
    return machine, Communicator(machine, size=size)


class TestPointToPoint:
    def test_send_recv_payload(self):
        machine, comm = make_comm(2)
        got = []

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=1000, payload={"x": 1}, tag=7)
            else:
                msg = yield from ctx.recv(source=0, tag=7)
                got.append((msg.payload, msg.nbytes, ctx.env.now))

        comm.spawn(main)
        machine.run()
        # a + b*n = 1e-3 + 1e-3 = 2e-3
        assert got == [({"x": 1}, 1000.0, pytest.approx(2e-3))]

    def test_send_cost_occupies_sender(self):
        machine, comm = make_comm(2)
        sender_done = []

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=2000)
                sender_done.append(ctx.env.now)
            else:
                yield from ctx.recv(source=0)

        comm.spawn(main)
        machine.run()
        assert sender_done == [pytest.approx(1e-3 + 2e-3)]

    def test_recv_any_source(self):
        machine, comm = make_comm(3)
        got = []

        def main(ctx):
            if ctx.rank == 0:
                msg = yield from ctx.recv(source=ANY_SOURCE)
                got.append(msg.source)
            elif ctx.rank == 2:
                yield from ctx.send(0, nbytes=10)

        comm.spawn(main)
        machine.run()
        assert got == [2]

    def test_tag_matching_skips_mismatched(self):
        machine, comm = make_comm(2)
        got = []

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=10, tag=1, payload="first")
                yield from ctx.send(1, nbytes=10, tag=2, payload="second")
            else:
                msg = yield from ctx.recv(source=0, tag=2)
                got.append(msg.payload)
                msg = yield from ctx.recv(source=0, tag=1)
                got.append(msg.payload)

        comm.spawn(main)
        machine.run()
        assert got == ["second", "first"]

    def test_message_order_preserved_same_pair_same_tag(self):
        machine, comm = make_comm(2)
        got = []

        def main(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    yield from ctx.send(1, nbytes=10, tag=0, payload=i)
            else:
                for _ in range(5):
                    msg = yield from ctx.recv(source=0, tag=0)
                    got.append(msg.payload)

        comm.spawn(main)
        machine.run()
        assert got == [0, 1, 2, 3, 4]

    def test_isend_overlaps_with_recv(self):
        machine, comm = make_comm(3)
        done_at = []

        def main(ctx):
            if ctx.rank == 0:
                req1 = ctx.isend(1, nbytes=1000)
                req2 = ctx.isend(2, nbytes=1000)
                yield req1
                yield req2
                done_at.append(ctx.env.now)
            else:
                yield from ctx.recv(source=0)

        comm.spawn(main)
        machine.run()
        # Both isends progress concurrently: 2e-3, not 4e-3.
        assert done_at == [pytest.approx(2e-3)]

    def test_send_to_self_rejected(self):
        machine, comm = make_comm(2)

        def main(ctx):
            yield from ctx.send(0, nbytes=10)

        comm.spawn(main, ranks=[0])
        with pytest.raises(SimulationError):
            machine.run()

    def test_bad_dest_rejected(self):
        machine, comm = make_comm(2)

        def main(ctx):
            yield from ctx.send(5, nbytes=10)

        comm.spawn(main, ranks=[0])
        with pytest.raises(ValueError):
            machine.run()

    def test_negative_bytes_rejected(self):
        machine, comm = make_comm(2)

        def main(ctx):
            yield from ctx.send(1, nbytes=-1)

        comm.spawn(main, ranks=[0])
        with pytest.raises(ValueError):
            machine.run()

    def test_invalid_size(self):
        machine = Machine()
        with pytest.raises(ValueError):
            Communicator(machine, size=0)


class TestCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
    def test_bcast_delivers_payload_everywhere(self, size):
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            value = yield from ctx.bcast(root=0, nbytes=100, payload="data")
            got[ctx.rank] = value

        comm.spawn(main)
        machine.run()
        assert got == {r: "data" for r in range(size)}

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_nonzero_root(self, root):
        machine, comm = make_comm(4)
        got = {}

        def main(ctx):
            payload = f"from-{ctx.rank}" if ctx.rank == root else None
            value = yield from ctx.bcast(root=root, nbytes=10, payload=payload)
            got[ctx.rank] = value

        comm.spawn(main)
        machine.run()
        assert set(got.values()) == {f"from-{root}"}

    def test_bcast_log_cost(self):
        """Binomial tree over p ranks completes in ~ceil(log2 p) message times."""
        machine, comm = make_comm(8, alpha=1.0, beta=0.0)
        finish = []

        def main(ctx):
            yield from ctx.bcast(root=0, nbytes=0)
            finish.append(ctx.env.now)

        comm.spawn(main)
        machine.run()
        assert max(finish) == pytest.approx(3.0)  # log2(8) rounds

    @pytest.mark.parametrize("size", [2, 3, 4, 7])
    def test_scatter_serial_delivers_blocks(self, size):
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            payloads = [f"block{r}" for r in range(size)] if ctx.rank == 0 else None
            block = yield from ctx.scatter_serial(
                root=0, nbytes_per_rank=50, payloads=payloads
            )
            got[ctx.rank] = block

        comm.spawn(main)
        machine.run()
        assert got == {r: f"block{r}" for r in range(size)}

    def test_scatter_serial_linear_cost(self):
        machine, comm = make_comm(5, alpha=1.0, beta=0.0)
        root_done = []

        def main(ctx):
            yield from ctx.scatter_serial(root=0, nbytes_per_rank=0)
            if ctx.rank == 0:
                root_done.append(ctx.env.now)

        comm.spawn(main)
        machine.run()
        assert root_done == [pytest.approx(4.0)]  # p-1 serial sends

    @pytest.mark.parametrize("size", [2, 3, 6])
    def test_gather_serial_collects_in_rank_order(self, size):
        machine, comm = make_comm(size)
        result = {}

        def main(ctx):
            out = yield from ctx.gather_serial(root=0, nbytes=10, payload=ctx.rank * 10)
            result[ctx.rank] = out

        comm.spawn(main)
        machine.run()
        assert result[0] == [r * 10 for r in range(size)]
        assert all(result[r] is None for r in range(1, size))

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 9])
    def test_allreduce_sum(self, size):
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            total = yield from ctx.allreduce(nbytes=8, value=ctx.rank + 1)
            got[ctx.rank] = total

        comm.spawn(main)
        machine.run()
        expected = size * (size + 1) // 2
        assert got == {r: expected for r in range(size)}

    def test_allreduce_custom_op(self):
        machine, comm = make_comm(4)
        got = {}

        def main(ctx):
            top = yield from ctx.allreduce(nbytes=8, value=ctx.rank, op=max)
            got[ctx.rank] = top

        comm.spawn(main)
        machine.run()
        assert set(got.values()) == {3}

    def test_barrier_synchronises(self):
        machine, comm = make_comm(4, alpha=1e-6)
        after = {}

        def main(ctx):
            yield ctx.env.timeout(float(ctx.rank))  # stagger arrivals
            yield from ctx.barrier()
            after[ctx.rank] = ctx.env.now

        comm.spawn(main)
        machine.run()
        assert min(after.values()) >= 3.0
        assert max(after.values()) - min(after.values()) < 1e-9

    def test_barrier_reusable(self):
        machine, comm = make_comm(3)
        counts = []

        def main(ctx):
            for _ in range(3):
                yield from ctx.barrier()
            counts.append(ctx.env.now)

        comm.spawn(main)
        machine.run()
        assert len(counts) == 3


class TestExtendedCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 11])
    @pytest.mark.parametrize("root", [0, 1])
    def test_reduce_sum_to_root(self, size, root):
        if root >= size:
            pytest.skip("root outside communicator")
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            result = yield from ctx.reduce(root=root, nbytes=8,
                                           value=ctx.rank + 1)
            got[ctx.rank] = result

        comm.spawn(main)
        machine.run()
        expected = size * (size + 1) // 2
        assert got[root] == expected
        assert all(got[r] is None for r in range(size) if r != root)

    def test_reduce_custom_op(self):
        machine, comm = make_comm(6)
        got = {}

        def main(ctx):
            result = yield from ctx.reduce(root=0, nbytes=8, value=ctx.rank,
                                           op=max)
            got[ctx.rank] = result

        comm.spawn(main)
        machine.run()
        assert got[0] == 5

    def test_reduce_log_rounds(self):
        """Binomial reduce over 8 ranks finishes in 3 message times."""
        machine, comm = make_comm(8, alpha=1.0, beta=0.0)
        done = {}

        def main(ctx):
            yield from ctx.reduce(root=0, nbytes=0, value=1)
            done[ctx.rank] = ctx.env.now

        comm.spawn(main)
        machine.run()
        assert done[0] == pytest.approx(3.0)

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_gather_binomial_rank_order(self, size):
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            out = yield from ctx.gather_binomial(root=0, nbytes=10,
                                                 payload=f"r{ctx.rank}")
            got[ctx.rank] = out

        comm.spawn(main)
        machine.run()
        assert got[0] == [f"r{r}" for r in range(size)]
        assert all(got[r] is None for r in range(1, size))

    @pytest.mark.parametrize("root", [0, 2, 4])
    def test_gather_binomial_nonzero_root(self, root):
        machine, comm = make_comm(5)
        got = {}

        def main(ctx):
            out = yield from ctx.gather_binomial(root=root, nbytes=10,
                                                 payload=ctx.rank * 10)
            got[ctx.rank] = out

        comm.spawn(main)
        machine.run()
        assert got[root] == [r * 10 for r in range(5)]

    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8])
    def test_alltoall_everyone_gets_everyone(self, size):
        machine, comm = make_comm(size)
        got = {}

        def main(ctx):
            payloads = [f"{ctx.rank}->{d}" for d in range(size)]
            out = yield from ctx.alltoall(nbytes_per_pair=16, payloads=payloads)
            got[ctx.rank] = out

        comm.spawn(main)
        machine.run()
        for r in range(size):
            assert got[r] == [f"{s}->{r}" for s in range(size)]

    def test_alltoall_payload_length_checked(self):
        machine, comm = make_comm(3)

        def main(ctx):
            yield from ctx.alltoall(nbytes_per_pair=1, payloads=[1, 2])

        comm.spawn(main, ranks=[0])
        with pytest.raises(ValueError):
            machine.run()

    def test_waitall_blocks_until_all_sends_complete(self):
        machine, comm = make_comm(4, alpha=1.0, beta=0.0)
        done = []

        def main(ctx):
            if ctx.rank == 0:
                reqs = [ctx.isend(d, nbytes=0) for d in (1, 2, 3)]
                yield from ctx.waitall(reqs)
                done.append(ctx.env.now)
            else:
                yield from ctx.recv(source=0)

        comm.spawn(main)
        machine.run()
        # Three concurrent zero-byte sends of 1 s each finish together.
        assert done == [pytest.approx(1.0)]


class TestCommSplit:
    def make_split(self, size=6, n_colors=2):
        machine, comm = make_comm(size)
        assignments = {r: (r % n_colors, r) for r in range(size)}
        return machine, comm, comm.split(assignments)

    def test_groups_partition_ranks(self):
        _, comm, sub = self.make_split()
        seen = []
        for color in sub.colors:
            group = sub._groups[color]
            seen.extend(group)
        assert sorted(seen) == list(range(6))

    def test_group_of_and_local_rank(self):
        _, _, sub = self.make_split()
        assert sub.group_of(0) == [0, 2, 4]
        assert sub.group_of(3) == [1, 3, 5]
        assert sub.local_rank_of(4) == 2
        assert sub.local_rank_of(1) == 0

    def test_translate_roundtrip(self):
        _, _, sub = self.make_split()
        for world in range(6):
            local = sub.local_rank_of(world)
            assert sub.translate(world, local) == world

    def test_key_orders_group(self):
        machine, comm = make_comm(4)
        # Reverse ordering within one color via keys.
        sub = comm.split({0: (0, 3), 1: (0, 2), 2: (0, 1), 3: (0, 0)})
        assert sub.group_of(0) == [3, 2, 1, 0]
        assert sub.local_rank_of(0) == 3

    def test_incomplete_assignment_rejected(self):
        machine, comm = make_comm(4)
        with pytest.raises(ValueError):
            comm.split({0: (0, 0), 1: (0, 1)})

    def test_translate_bad_local_rank(self):
        _, _, sub = self.make_split()
        with pytest.raises(ValueError):
            sub.translate(0, 5)

    def test_group_communication_through_world(self):
        """Exchange within a split group via translated world ranks."""
        machine, comm = make_comm(6)
        sub = comm.split({r: (r % 2, r) for r in range(6)})
        got = {}

        def main(ctx):
            group = sub.group_of(ctx.rank)
            local = sub.local_rank_of(ctx.rank)
            if local == 0:
                for other in group[1:]:
                    yield from ctx.send(other, nbytes=8,
                                        payload=f"g{sub.color_of(ctx.rank)}")
            else:
                msg = yield from ctx.recv(source=group[0])
                got[ctx.rank] = msg.payload

        comm.spawn(main)
        machine.run()
        assert got == {2: "g0", 4: "g0", 3: "g1", 5: "g1"}
