"""Chaos path through the parallel engine.

The resilience layer's end-to-end story — a :class:`FaultyStore` drops
ensemble members, the filter degrades gracefully with compensated
inflation — must survive fan-out unchanged: the stateless per-call
inflation override means a single pool-backed engine serves degraded
analyses bit-identically to the serial path, with no filter copies and
no shared-memory leaks.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Grid, ObservationNetwork
from repro.data import EnsembleStore
from repro.faults import (
    FaultSchedule,
    FaultyStore,
    RetryPolicy,
    read_ensemble_resilient,
)
from repro.filters.distributed import DistributedEnKF
from repro.models import correlated_ensemble
from repro.parallel import AnalysisExecutor


@pytest.fixture
def chaos_problem(tmp_path):
    grid = Grid(n_x=16, n_y=8, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(0)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, 12, length_scale_km=4.0, rng=rng
    )
    store = EnsembleStore(tmp_path / "ens", grid)
    store.write_ensemble(states)
    net = ObservationNetwork.random(grid, m=40, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
    return store, states, net, y, decomp


@pytest.mark.parametrize("strategy", ["thread", "process"])
def test_chaos_run_through_parallel_engine(chaos_problem, strategy):
    """FaultyStore read -> degraded analysis, fanned out: bit-identical
    to the serial engine and the filter's state untouched."""
    store, states, net, y, decomp = chaos_problem
    sched = FaultSchedule(seed=7, member_fault_rate=0.4,
                          member_fault_attempts=5)
    faulty = FaultyStore(store, sched)
    got, surviving, dropped = read_ensemble_resilient(
        faulty, retry=RetryPolicy(max_retries=2), report=faulty.report
    )
    assert dropped, "schedule must actually drop members for this test"
    assert np.array_equal(got, states[:, surviving])

    serial = DistributedEnKF(radius_km=2.0, inflation=1.05)
    ref, ref_result = serial.assimilate_degraded(
        decomp, states, net, y, dropped=dropped, rng=13
    )
    with AnalysisExecutor(strategy=strategy, workers=2) as ex:
        filt = DistributedEnKF(radius_km=2.0, inflation=1.05, executor=ex)
        out, result = filt.assimilate_degraded(
            decomp, states, net, y, dropped=dropped, rng=13
        )
        assert filt.inflation == 1.05  # no mutation, pool-safe
    assert result.surviving == ref_result.surviving
    assert result.compensation == ref_result.compensation
    assert np.array_equal(ref, out)
    assert out.shape == (decomp.grid.n, len(surviving))


def test_degraded_cycles_share_one_pool(chaos_problem):
    """Alternating clean and degraded cycles through one process pool:
    each matches its serial counterpart exactly."""
    store, states, net, y, decomp = chaos_problem
    serial = DistributedEnKF(radius_km=2.0, inflation=1.05)
    with AnalysisExecutor(strategy="process", workers=2) as ex:
        filt = DistributedEnKF(radius_km=2.0, inflation=1.05, executor=ex)
        clean_ref = serial.assimilate(decomp, states, net, y, rng=1)
        clean_out = filt.assimilate(decomp, states, net, y, rng=1)
        assert np.array_equal(clean_ref, clean_out)
        deg_ref, _ = serial.assimilate_degraded(
            decomp, states, net, y, dropped=(0, 7), rng=2
        )
        deg_out, _ = filt.assimilate_degraded(
            decomp, states, net, y, dropped=(0, 7), rng=2
        )
        assert np.array_equal(deg_ref, deg_out)
        # The degraded cycle must not poison the next clean one.
        again_ref = serial.assimilate(decomp, states, net, y, rng=3)
        again_out = filt.assimilate(decomp, states, net, y, rng=3)
        assert np.array_equal(again_ref, again_out)
