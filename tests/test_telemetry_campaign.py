"""Acceptance test: one traced chaos campaign -> one coherent Chrome trace.

A faulty, checkpointed twin campaign is crashed mid-flight, its newest
checkpoint is corrupted on disk, and the campaign is resumed under an
injected tracer.  The single exported trace must show every layer of the
stack — fault retries, checkpoint failover, checkpoint commits and
filter analyses — with the spans nested correctly.
"""

import json

import numpy as np
import pytest

from repro.checkpoint import CampaignRunner, SimulatedCrash
from repro.core import Decomposition, Grid, ObservationNetwork, radius_to_halo
from repro.faults import FaultSchedule
from repro.filters import DistributedEnKF
from repro.models import AdvectionDiffusionModel, TwinExperiment, correlated_ensemble
from repro.telemetry import (
    MetricsRegistry,
    RunReport,
    Tracer,
    spans_from_chrome,
    use_metrics,
    validate_run_report,
    write_chrome_trace,
)

N_CYCLES = 8
INTERVAL = 2
KILL_AT = 5  # checkpoints 2 and 4 exist; corrupt 4, fail over to 2


def tiny_problem():
    grid = Grid(n_x=16, n_y=8, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 6.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=1, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=24, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = DistributedEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    twin = TwinExperiment(
        model,
        network,
        lambda states, y, rng: filt.assimilate(decomp, states, network, y, rng=rng),
        steps_per_cycle=3,
        master_seed=3,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=10.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 8, length_scale_km=10.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0


@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    """Run the chaos scenario once; share (tracer, runner, result, trace path)."""
    ckpt_dir = tmp_path_factory.mktemp("ckpt")
    out_dir = tmp_path_factory.mktemp("out")
    twin, truth0, ensemble0 = tiny_problem()
    # member_fault_rate high enough that retries deterministically fire
    # across the resume's member reads (schedule is pure in (seed, site)).
    faults = FaultSchedule(seed=11, member_fault_rate=0.3, member_fault_attempts=1)
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics)

    def make_runner():
        return CampaignRunner(
            twin,
            ckpt_dir,
            interval=INTERVAL,
            faults=faults,
            config={"experiment": "traced-chaos"},
            tracer=tracer,
        )

    def kill(state):
        if state.cycle == KILL_AT:
            raise SimulatedCrash("test kill")

    with use_metrics(metrics):
        runner = make_runner()
        with pytest.raises(SimulatedCrash):
            runner.run(truth0.copy(), ensemble0.copy(), N_CYCLES, on_cycle=kill)
        assert runner.store.cycles() == [2, 4]

        # corrupt the newest checkpoint so resume must fail over to cycle 2
        victim = sorted(runner.store.cycle_dir(4).glob("member_*.bin"))[0]
        victim.write_bytes(b"\xff" * victim.stat().st_size)

        runner = make_runner()
        result = runner.resume(N_CYCLES)
        report = runner.run_report(result, notes=["chaos acceptance"])
    trace_path = write_chrome_trace(out_dir / "trace.json", tracer=tracer)
    return tracer, runner, result, report, trace_path


class TestTracedChaosCampaign:
    def test_campaign_completes_despite_chaos(self, traced_campaign):
        _, runner, result, _, _ = traced_campaign
        assert result.n_cycles == N_CYCLES
        # the corrupted checkpoint was quarantined for forensics (resume
        # later re-commits a fresh cycle-4 checkpoint in its place)
        quarantined = list(runner.store.directory.glob("*.corrupt*"))
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith(runner.store.cycle_dir(4).name)

    def test_all_span_families_in_one_trace(self, traced_campaign):
        _, _, _, _, trace_path = traced_campaign
        names = {s.name for s in spans_from_chrome(trace_path)}
        for expected in (
            "fault.retry",          # transient read faults were retried
            "checkpoint.failover",  # the corrupt checkpoint was skipped
            "checkpoint.save",
            "checkpoint.stage",
            "checkpoint.commit",
            "checkpoint.load",
            "checkpoint.verify",
            "cycle",
            "cycle.analysis",
            "filter.assimilate",
            "store.read_member",
            "store.write_member",
            "campaign.drive",
        ):
            assert expected in names, f"span {expected!r} missing from trace"

    def test_span_nesting_is_correct(self, traced_campaign):
        _, _, _, _, trace_path = traced_campaign
        spans = spans_from_chrome(trace_path)
        by_id = {s.span_id: s for s in spans}

        def parent_name(span):
            return by_id[span.parent_id].name if span.parent_id else None

        for span in spans:
            if span.name == "cycle":
                assert parent_name(span) == "campaign.drive"
            elif span.name == "cycle.analysis":
                assert parent_name(span) == "cycle"
            elif span.name == "filter.assimilate":
                assert parent_name(span) == "cycle.analysis"
            elif span.name in ("checkpoint.stage", "checkpoint.commit"):
                assert parent_name(span) == "checkpoint.save"
            elif span.name == "checkpoint.verify":
                assert parent_name(span) == "checkpoint.load"
            elif span.name == "checkpoint.failover":
                assert parent_name(span) is None  # load_best has no parent
            # every parent reference resolves and encloses its child
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start + 1e-9
                assert span.end <= parent.end + 1e-9

    def test_retries_really_fired(self, traced_campaign):
        tracer, runner, _, _, _ = traced_campaign
        retries = [s for s in tracer.spans if s.name == "fault.retry"]
        assert retries, "fault schedule injected no transient read faults"
        assert runner.report.summary()["faults_injected"] > 0

    def test_failover_span_names_the_corrupt_cycle(self, traced_campaign):
        tracer, _, _, _, _ = traced_campaign
        (failover,) = [s for s in tracer.spans if s.name == "checkpoint.failover"]
        assert failover.attrs["cycle"] == 4
        assert failover.attrs["quarantined"] is True

    def test_run_report_validates_and_round_trips(self, traced_campaign, tmp_path):
        _, _, result, report, _ = traced_campaign
        payload = json.loads(report.to_json())
        validate_run_report(payload)
        assert payload["kind"] == "twin-campaign"
        assert payload["n_cycles"] == N_CYCLES
        assert payload["seeds"]["fault_seed"] == 11
        assert payload["fault_counts"]["faults_injected"] > 0
        assert set(payload["phase_totals"]) >= {"checkpoint", "cycle", "filter"}
        assert payload["metrics"]["counters"]["checkpoint.loads"] >= 1
        assert (
            payload["diagnostics"]["analysis_rmse"]
            == pytest.approx(result.analysis_rmse)
        )
        restored = RunReport.from_dict(payload)
        assert restored.seeds == payload["seeds"]

    def test_resume_matches_uninterrupted_run(self, traced_campaign, tmp_path):
        """Tracing must not perturb the determinism contract."""
        _, _, result, _, _ = traced_campaign
        twin, truth0, ensemble0 = tiny_problem()
        faults = FaultSchedule(
            seed=11, member_fault_rate=0.3, member_fault_attempts=1
        )
        clean = CampaignRunner(
            twin, tmp_path / "ref", interval=INTERVAL, faults=faults
        ).run(truth0, ensemble0, N_CYCLES)
        assert result.analysis_rmse == pytest.approx(clean.analysis_rmse)


class TestDisabledOverhead:
    def test_untraced_runner_records_nothing(self, tmp_path):
        from repro.telemetry import NULL_TRACER, get_tracer

        twin, truth0, ensemble0 = tiny_problem()
        runner = CampaignRunner(twin, tmp_path / "ckpt", interval=2)
        runner.run(truth0, ensemble0, 2)
        assert get_tracer() is NULL_TRACER
        report = runner.run_report()
        assert report.phase_totals == {}
        assert report.metrics == {}
