"""The live health plane: probes, alert rules, flight recorder, exporter.

Fast tier: everything here runs on tiny ensembles or synthetic stats.
The slow service-integration half (scraping ``/metrics`` mid-acceptance)
lives in ``tests/test_service_e2e.py``.
"""

import json
import math
import threading
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.telemetry import (
    HEALTH_SCHEMA,
    Alert,
    AlertEngine,
    AlertRule,
    FlightRecorder,
    HealthProbe,
    HealthReport,
    MetricsExporter,
    MetricsRegistry,
    RunReport,
    SpanRing,
    Tracer,
    default_filter_rules,
    default_service_rules,
    merge_snapshots,
    prometheus_text,
    render_health,
    sanitize_metric_name,
    use_metrics,
    use_tracer,
    validate_health_report,
    validate_run_report,
)


class TestAlertRule:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            AlertRule("r", "m", "!=", 1.0)

    def test_bad_sustained_rejected(self):
        with pytest.raises(ValueError, match="sustained"):
            AlertRule("r", "m", "<", 1.0, sustained=0)

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            AlertRule("r", "m", "<", 1.0, severity="page")

    def test_holds_is_nan_safe(self):
        rule = AlertRule("r", "m", "<", 1.0)
        assert rule.holds(0.5)
        assert not rule.holds(2.0)
        assert not rule.holds(math.nan)

    def test_alert_message_names_rule_and_cycle(self):
        alert = Alert(
            rule="collapse", metric="spread_skill", cycle=4,
            value=0.1, threshold=0.2, op="<", severity="critical",
        )
        assert "collapse" in alert.message and "cycle 4" in alert.message


class TestAlertEngine:
    def test_sustained_counts_consecutive_violations(self):
        engine = AlertEngine([AlertRule("low", "x", "<", 1.0, sustained=3)])
        assert engine.evaluate(0, {"x": 0.5}) == []
        assert engine.evaluate(1, {"x": 0.5}) == []
        fired = engine.evaluate(2, {"x": 0.5})
        assert [a.rule for a in fired] == ["low"]
        assert fired[0].cycle == 2

    def test_streak_resets_on_recovery(self):
        engine = AlertEngine([AlertRule("low", "x", "<", 1.0, sustained=2)])
        engine.evaluate(0, {"x": 0.5})
        engine.evaluate(1, {"x": 5.0})  # recovers, streak resets
        assert engine.evaluate(2, {"x": 0.5}) == []
        assert engine.evaluate(3, {"x": 0.5}) != []

    def test_missing_or_nan_stat_is_no_evidence(self):
        engine = AlertEngine([AlertRule("low", "x", "<", 1.0, sustained=2)])
        engine.evaluate(0, {"x": 0.5})
        engine.evaluate(1, {})  # missing → streak reset
        engine.evaluate(2, {"x": 0.5})
        assert engine.evaluate(3, {"x": math.nan}) == []
        assert engine.fired == []

    def test_latched_until_cleared_then_rearms(self):
        engine = AlertEngine([AlertRule("low", "x", "<", 1.0)])
        assert len(engine.evaluate(0, {"x": 0.5})) == 1
        # Still violating: latched, no duplicate alert.
        assert engine.evaluate(1, {"x": 0.4}) == []
        assert engine.active == ["low"]
        # Clears, then violates again: fires anew.
        engine.evaluate(2, {"x": 2.0})
        assert engine.active == []
        assert len(engine.evaluate(3, {"x": 0.5})) == 1
        assert len(engine.fired) == 2

    def test_default_rule_sets_validate(self):
        for rule in (*default_filter_rules(), *default_service_rules()):
            assert rule.severity in ("warning", "critical")


def _healthy_ensembles(rng, n=12, members=8):
    background = rng.normal(size=(n, members))
    analysis = background * 0.9
    return background, analysis


class TestHealthProbe:
    def test_healthy_cycle_fires_nothing(self):
        rng = np.random.default_rng(0)
        probe = HealthProbe()
        background, analysis = _healthy_ensembles(rng)
        stats = probe.observe_cycle(
            0, background, analysis, None, None, None,
            analysis_rmse=1.0,
        )
        assert probe.engine.fired == []
        assert stats["spread_skill"] == pytest.approx(
            float(np.sqrt(np.mean(analysis.std(axis=1, ddof=1) ** 2)))
        )
        assert math.isnan(stats["innovation_chi2"])

    def test_collapse_detected_from_degenerate_ensemble(self):
        rng = np.random.default_rng(1)
        probe = HealthProbe()
        background, analysis = _healthy_ensembles(rng)
        collapsed = analysis * 1e-3  # spread ≪ error
        for cycle in range(3):
            probe.observe_cycle(
                cycle, background, collapsed, None, None, None,
                analysis_rmse=1.0,
            )
        assert "ensemble_collapse" in [a.rule for a in probe.engine.fired]

    def test_rank_deficiency_detected(self):
        probe = HealthProbe()
        member = np.random.default_rng(2).normal(size=12)
        # Every member identical up to scale: anomaly rank 1 < N - 1.
        analysis = np.column_stack([member * s for s in (1.0, 2.0, 3.0, 4.0)])
        stats = probe.observe_cycle(
            0, analysis, analysis, None, None, None, analysis_rmse=1.0
        )
        assert stats["rank_deficiency"] > 0
        assert "rank_deficiency" in [a.rule for a in probe.engine.fired]

    def test_divergence_tracks_best_rmse(self):
        rng = np.random.default_rng(3)
        probe = HealthProbe()
        background, analysis = _healthy_ensembles(rng)
        for cycle, rmse in enumerate([1.0, 0.5, 2.0, 2.0]):
            probe.observe_cycle(
                cycle, background, analysis, None, None, None,
                analysis_rmse=rmse,
            )
        # 2.0 / 0.5 = 4 > 3 for two cycles → filter_divergence.
        assert "filter_divergence" in [a.rule for a in probe.engine.fired]

    def test_on_alert_hook_receives_new_alerts(self):
        seen = []
        probe = HealthProbe(
            rules=[AlertRule("low", "x", "<", 1.0)],
            on_alert=lambda alerts, stats: seen.append(
                [a.rule for a in alerts]
            ),
        )
        probe.observe_stats(0, {"x": 0.5})
        probe.observe_stats(1, {"x": 0.5})  # latched: hook not re-invoked
        assert seen == [["low"]]

    def test_gauges_published_only_with_tracer_or_always(self):
        registry = MetricsRegistry()
        probe = HealthProbe(rules=())
        with use_metrics(registry):
            probe.observe_stats(0, {"x": 1.0})
        assert registry.snapshot()["gauges"] == {}

        with use_metrics(registry):
            with use_tracer(Tracer()):
                probe.observe_stats(1, {"x": 2.0})
        assert registry.snapshot()["gauges"]["health.x"] == 2.0

        always = HealthProbe(rules=(), always_publish=True)
        with use_metrics(registry):
            always.observe_stats(0, {"y": 3.0})
        assert registry.snapshot()["gauges"]["health.y"] == 3.0

    def test_alert_counter_bumped_even_without_tracer(self):
        registry = MetricsRegistry()
        probe = HealthProbe(rules=[AlertRule("low", "x", "<", 1.0)])
        with use_metrics(registry):
            probe.observe_stats(0, {"x": 0.5})
        assert registry.snapshot()["counters"]["health.alerts_fired"] == 1


class TestDemoCampaignHealth:
    """The seeded scenarios of the acceptance criteria, on the demo twin."""

    def test_healthy_demo_campaign_fires_zero_alerts(self):
        from repro.service.demo import campaign_builder

        twin, truth0, ensemble0 = campaign_builder(5)()
        twin.run(truth0, ensemble0, 5)
        assert twin.health.engine.fired == []
        assert twin.health.engine.evaluations == 5

    def test_seeded_collapse_fires_within_three_cycles(self):
        from repro.service.demo import campaign_builder

        twin, truth0, ensemble0 = campaign_builder(
            9, inflation=1.0, n_members=3
        )()
        twin.run(truth0, ensemble0, 3)
        collapse = [
            a for a in twin.health.engine.fired
            if a.rule == "ensemble_collapse"
        ]
        assert collapse and collapse[0].cycle < 3

    def test_run_report_embeds_validating_health(self):
        from repro.service.demo import campaign_builder

        twin, truth0, ensemble0 = campaign_builder(5)()
        result = twin.run(truth0, ensemble0, 3)
        report = twin.run_report(result)
        payload = json.loads(report.to_json())
        assert payload["health"]["schema"] == HEALTH_SCHEMA
        validate_run_report(payload)
        assert payload["health"]["n_evaluations"] == 3


class TestHealthReport:
    def make(self):
        probe = HealthProbe(rules=[AlertRule("low", "x", "<", 1.0)])
        probe.observe_stats(0, {"x": 2.0})
        probe.observe_stats(1, {"x": 0.5})
        return probe.report(kind="filter", notes=["unit test"])

    def test_roundtrip(self, tmp_path):
        path = self.make().write(tmp_path / "health.json")
        report = HealthReport.from_dict(json.loads(path.read_text()))
        assert report.kind == "filter"
        assert report.alerts_fired == 1
        assert report.series["x"] == [2.0, 0.5]

    def test_nan_stats_serialize_as_null(self):
        probe = HealthProbe(rules=())
        probe.observe_stats(0, {"x": math.nan})
        payload = json.loads(probe.report().to_json())
        assert payload["series"]["x"] == [None]
        assert payload["last"]["x"] is None
        validate_health_report(payload)

    def test_validate_names_every_violation(self):
        payload = self.make().to_dict()
        del payload["rules"]
        payload["n_evaluations"] = "two"
        with pytest.raises(ValueError) as err:
            validate_health_report(payload)
        message = str(err.value)
        assert "rules" in message
        assert "n_evaluations" in message

    def test_validate_rejects_incomplete_alert_rows(self):
        payload = self.make().to_dict()
        payload["alerts"] = [{"rule": "low"}]  # missing keys
        with pytest.raises(ValueError, match=r"alerts\[0\]"):
            validate_health_report(payload)

    def test_unknown_schema_rejected(self):
        payload = self.make().to_dict()
        payload["schema"] = "senkf-health/99"
        with pytest.raises(ValueError, match="unknown schema"):
            validate_health_report(payload)

    def test_invalid_report_never_hits_disk(self, tmp_path):
        report = self.make()
        report.n_evaluations = -1
        target = tmp_path / "health.json"
        with pytest.raises(ValueError):
            report.write(target)
        assert not target.exists()

    def test_run_report_rejects_bad_health_section(self):
        run = RunReport(kind="t", health={"schema": "nope"})
        with pytest.raises(ValueError, match="health"):
            validate_run_report(json.loads(run.to_json()))

    def test_render_flags_violated_rules_and_lists_alerts(self):
        text = render_health(self.make().to_dict())
        assert "1 alert(s) fired" in text
        assert "!! violated now" in text
        assert "ALERT critical: low at cycle 1" in text


class TestSpanRing:
    def test_capacity_bounds_and_counts_drops(self):
        ring = SpanRing(3)
        for i in range(7):
            ring.append(i)
        assert len(ring) == 3
        assert ring.dropped == 4
        assert list(ring) == [4, 5, 6]  # oldest evicted first

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanRing(0)


class TestFlightRecorder:
    def test_memory_bounded_under_span_load(self):
        rec = FlightRecorder(capacity=16, metrics=MetricsRegistry())
        for i in range(100):
            with rec.span("cycle", category="cycle", i=i):
                pass
        assert len(rec.spans) == 16
        assert rec.dropped_spans == 84
        held = [s.attrs["i"] for s in rec.spans]
        assert held == list(range(84, 100))  # the newest window

    def test_aggregation_still_works_over_the_ring(self):
        rec = FlightRecorder(capacity=8)
        for _ in range(20):
            with rec.span("cycle", category="cycle"):
                pass
        totals = rec.phase_totals()
        assert set(totals) == {"cycle"}

    def test_dump_writes_trace_and_validating_report(self, tmp_path):
        rec = FlightRecorder(capacity=8, metrics=MetricsRegistry())
        for i in range(12):
            with rec.span("cycle", category="cycle"):
                rec.event("tick", category="cycle", i=i)
        paths = rec.dump(tmp_path, reason="unit-test", notes=["n1"])
        trace = json.loads(paths["trace"].read_text())
        window = trace["metadata"]["flight_recorder"]
        assert window["reason"] == "unit-test"
        assert window["spans_dropped"] == 4
        payload = json.loads(paths["report"].read_text())
        validate_run_report(payload)
        assert payload["kind"] == "flight-dump"
        assert payload["config"]["reason"] == "unit-test"

    def test_sequential_dumps_get_distinct_names(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        with rec.span("cycle", category="cycle"):
            pass
        first = rec.dump(tmp_path, reason="one")
        second = rec.dump(tmp_path, reason="two")
        assert first["trace"] != second["trace"]
        assert rec.window()["dumps"] == 2

    def test_concurrent_dumps_are_serialized(self, tmp_path):
        rec = FlightRecorder(capacity=32)
        with rec.span("cycle", category="cycle"):
            pass
        results = []

        def dump():
            results.append(rec.dump(tmp_path, reason="race"))

        threads = [threading.Thread(target=dump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        traces = {r["trace"] for r in results}
        assert len(traces) == 4  # no clobbered sequence numbers


class TestPrometheusText:
    def test_sanitize(self):
        assert sanitize_metric_name("service.jobs-done") == "service_jobs_done"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.counter("svc.done").inc(3)
        registry.gauge("svc.depth").set(1.5)
        hist = registry.histogram("svc.wait", (1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(5.0)
        text = prometheus_text(registry.snapshot())
        assert "# TYPE svc_done counter\nsvc_done 3.0" in text
        assert "# TYPE svc_depth gauge\nsvc_depth 1.5" in text
        # Buckets are cumulative and close with +Inf/_sum/_count.
        assert 'svc_wait_bucket{le="1.0"} 1' in text
        assert 'svc_wait_bucket{le="2.0"} 2' in text
        assert 'svc_wait_bucket{le="+Inf"} 3' in text
        assert "svc_wait_count 3" in text
        assert "svc_wait_p50" in text
        assert text.endswith("\n")


class TestMergeSnapshots:
    def test_counters_sum_and_gauges_last_win(self):
        a = {"counters": {"c": 1.0}, "gauges": {"g": 1.0}, "histograms": {}}
        b = {"counters": {"c": 2.0}, "gauges": {"g": 7.0}, "histograms": {}}
        merged = merge_snapshots(a, b)
        assert merged["counters"]["c"] == 3.0
        assert merged["gauges"]["g"] == 7.0

    def test_histograms_sum_bucketwise_with_recomputed_percentiles(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 1.5):
            r1.histogram("h", (1.0, 2.0)).observe(value)
        for value in (0.2, 5.0):
            r2.histogram("h", (1.0, 2.0)).observe(value)
        merged = merge_snapshots(r1.snapshot(), r2.snapshot())
        hist = merged["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["counts"] == [2, 1, 1]
        assert hist["min"] == 0.2 and hist["max"] == 5.0
        assert "p50" in hist["percentiles"]

    def test_bound_mismatch_recorded_not_misbinned(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.histogram("h", (1.0,)).observe(0.5)
        r2.histogram("h", (9.0,)).observe(0.5)
        merged = merge_snapshots(r1.snapshot(), r2.snapshot())
        assert merged["histograms"]["h"]["bounds"] == [1.0]
        assert merged["histograms"]["h"]["count"] == 1
        assert any("bounds mismatch" in c for c in merged["conflicts"])

    def test_empty_sources_ignored(self):
        assert merge_snapshots({}, None or {})["counters"] == {}


class TestMetricsExporter:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()

    def test_metrics_and_healthz_served_live(self):
        registry = MetricsRegistry()
        registry.counter("svc.done").inc(2)
        with MetricsExporter(
            [registry],
            health_source=lambda: {"queue_depth": 3},
        ) as exporter:
            status, ctype, body = self._get(f"{exporter.url}/metrics")
            assert status == 200 and "text/plain" in ctype
            assert "svc_done 2.0" in body.decode()

            status, ctype, body = self._get(f"{exporter.url}/healthz")
            doc = json.loads(body)
            assert status == 200 and doc["status"] == "ok"
            assert doc["queue_depth"] == 3
            assert doc["uptime_seconds"] >= 0.0

            # The exporter observes its own scrapes (visible one scrape
            # later, since timing lands after the response is sent).
            _, _, body = self._get(f"{exporter.url}/metrics")
            assert "exporter_scrapes" in body.decode()
            assert "exporter_scrape_seconds_bucket" in body.decode()

    def test_unknown_path_404s(self):
        with MetricsExporter() as exporter:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(f"{exporter.url}/nope")
            assert err.value.code == 404

    def test_broken_source_degrades_not_dies(self):
        def broken():
            raise RuntimeError("boom")

        with MetricsExporter(
            [broken], health_source=broken
        ) as exporter:
            _, _, body = self._get(f"{exporter.url}/metrics")
            assert "exporter_broken_source 1.0" in body.decode()
            _, _, body = self._get(f"{exporter.url}/healthz")
            doc = json.loads(body)
            assert doc["status"] == "degraded"
            assert "boom" in doc["health_source_error"]

    def test_stop_is_idempotent_and_releases_port(self):
        exporter = MetricsExporter([MetricsRegistry()])
        exporter.start()
        exporter.stop()
        exporter.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{exporter.port}/metrics", timeout=1
            )


class TestServiceFlightDumps:
    """Alert → automatic flight dump, end to end through the service."""

    def test_collapsing_job_dumps_flight_on_alert(self, tmp_path):
        from repro.service import ServiceClient
        from repro.service.demo import campaign_spec

        with ServiceClient(total_slots=1, root=tmp_path / "svc") as client:
            job_id = client.submit(campaign_spec(
                "lab", 9, 3, inflation=1.0, n_members=3, name="collapse",
            ))
            client.result(job_id, timeout=300)
            report = client.report()
        flight_dir = tmp_path / "svc" / "lab" / job_id / "flight"
        traces = sorted(flight_dir.glob("*.trace.json"))
        assert traces, "alert should have dumped the flight recorder"
        meta = json.loads(traces[0].read_text())["metadata"]["flight_recorder"]
        assert meta["reason"].startswith("alert:ensemble_collapse")
        payload = json.loads(sorted(flight_dir.glob("*.report.json"))[0]
                             .read_text())
        validate_run_report(payload)
        # The job still completed: alerts observe, they never interfere.
        assert report.to_dict()["tenants"]["lab"]["done"] == 1

    def test_explicit_dump_request_via_client(self, tmp_path):
        from repro.service import ServiceClient
        from repro.service.demo import campaign_spec

        with ServiceClient(total_slots=1, root=tmp_path / "svc") as client:
            job_id = client.submit(campaign_spec("ops", 5, 2))
            client.result(job_id, timeout=300)
            dumps = client.dump(reason="operator-request")
        assert dumps, "a finished job's recorder is still dumpable"
        for entry in dumps:
            meta = json.loads(
                Path(entry["trace"]).read_text()
            )["metadata"]["flight_recorder"]
            assert meta["reason"] == "operator-request"
