"""Tests for the deterministic ETKF (global and domain-localized)."""

import numpy as np
import pytest

from repro.core import Decomposition, Grid, ObservationNetwork
from repro.core.etkf import analysis_etkf, local_analysis_etkf
from repro.models import correlated_ensemble


def gaussian_setup(n=12, n_members=8, m=6, seed=0, rho=0.7):
    rng = np.random.default_rng(seed)
    cov = rho ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    chol = np.linalg.cholesky(cov)
    truth = chol @ rng.standard_normal(n)
    background_mean = truth + chol @ rng.standard_normal(n)
    xb = background_mean[:, None] + chol @ rng.standard_normal((n, n_members))
    h = np.eye(n)[rng.choice(n, size=m, replace=False)]
    sigma = 0.5
    y = h @ truth + rng.normal(0, sigma, m)
    return cov, truth, xb, h, np.full(m, sigma**2), y


class TestGlobalEtkf:
    def test_shape_and_finite(self):
        _, _, xb, h, r_diag, y = gaussian_setup()
        xa = analysis_etkf(xb, h, r_diag, y)
        assert xa.shape == xb.shape
        assert np.all(np.isfinite(xa))

    def test_mean_matches_kalman_update_in_ensemble_space(self):
        """For a large ensemble the ETKF mean approaches the KF mean."""
        n, m = 8, 8
        rng = np.random.default_rng(1)
        cov = 0.6 ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        chol = np.linalg.cholesky(cov)
        truth = chol @ rng.standard_normal(n)
        h = np.eye(n)
        sigma = 0.4
        y = h @ truth + rng.normal(0, sigma, m)
        r_diag = np.full(m, sigma**2)

        n_members = 4000
        xb = truth[:, None] + chol @ rng.standard_normal((n, n_members))
        xa = analysis_etkf(xb, h, r_diag, y)

        s = cov + np.diag(r_diag)
        k = cov @ np.linalg.inv(s)
        want = xb.mean(axis=1) + k @ (y - xb.mean(axis=1))
        assert np.abs(xa.mean(axis=1) - want).max() < 0.1

    def test_analysis_covariance_exact_in_ensemble_space(self):
        """The transform produces exactly the Kalman posterior covariance
        within the ensemble subspace: Ua Ua^T/(N-1) = (I - KH) B_ens."""
        _, _, xb, h, r_diag, y = gaussian_setup(n=6, n_members=40, m=4)
        n_members = xb.shape[1]
        xa = analysis_etkf(xb, h, r_diag, y)

        u = xb - xb.mean(axis=1, keepdims=True)
        b_ens = u @ u.T / (n_members - 1)
        s = h @ b_ens @ h.T + np.diag(r_diag)
        k = b_ens @ h.T @ np.linalg.inv(s)
        want = (np.eye(6) - k @ h) @ b_ens

        ua = xa - xa.mean(axis=1, keepdims=True)
        got = ua @ ua.T / (n_members - 1)
        assert np.allclose(got, want, atol=1e-8)

    def test_deterministic_no_rng(self):
        _, _, xb, h, r_diag, y = gaussian_setup()
        assert np.array_equal(
            analysis_etkf(xb, h, r_diag, y), analysis_etkf(xb, h, r_diag, y)
        )

    def test_reduces_spread(self):
        _, _, xb, h, r_diag, y = gaussian_setup(n_members=20)
        xa = analysis_etkf(xb, h, r_diag, y)
        assert xa.std(axis=1).mean() < xb.std(axis=1).mean()

    def test_inflation_applied(self):
        _, _, xb, h, r_diag, y = gaussian_setup()
        plain = analysis_etkf(xb, h, r_diag, y, inflation=1.0)
        inflated = analysis_etkf(xb, h, r_diag, y, inflation=1.3)
        assert inflated.std(axis=1).mean() > plain.std(axis=1).mean()

    def test_validation(self):
        _, _, xb, h, r_diag, y = gaussian_setup()
        with pytest.raises(ValueError):
            analysis_etkf(xb[:, :1], h, r_diag, y)
        with pytest.raises(ValueError):
            analysis_etkf(xb, h, r_diag, y[:-1])
        with pytest.raises(ValueError):
            analysis_etkf(xb, h, r_diag, y, inflation=0.0)

    def test_mean_preserved_with_zero_innovation(self):
        _, _, xb, h, r_diag, _ = gaussian_setup()
        y = np.asarray(h @ xb.mean(axis=1))
        xa = analysis_etkf(xb, h, r_diag, y)
        assert np.allclose(xa.mean(axis=1), xb.mean(axis=1), atol=1e-10)


class TestLocalEtkf:
    def setup(self, seed=0):
        grid = Grid(n_x=16, n_y=8, dx_km=1.0, dy_km=1.0)
        rng = np.random.default_rng(seed)
        xb = correlated_ensemble(grid, 12, length_scale_km=4.0, rng=rng)
        net = ObservationNetwork.random(grid, m=40, obs_error_std=0.3,
                                        rng=rng)
        truth = rng.normal(size=grid.n)
        y = net.observe(truth, rng=rng)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=3, eta=3)
        return grid, xb, net, y, truth, decomp

    def test_full_domain_matches_global(self):
        grid, xb, net, y, _, _ = self.setup()
        decomp = Decomposition(grid, n_sdx=1, n_sdy=1, xi=0, eta=0)
        sd = decomp.subdomain(0, 0)
        local = local_analysis_etkf(sd, xb[sd.expansion_flat], net, y)
        r_diag = np.full(net.m, net.obs_error_std**2)
        global_ = analysis_etkf(xb, net.operator, r_diag, y)
        order = np.argsort(sd.interior_flat)
        assert np.allclose(local[order], global_[np.sort(sd.interior_flat)],
                           atol=1e-8)

    def test_assembled_analysis_reduces_obs_space_error(self):
        grid, xb, net, y, truth, decomp = self.setup(seed=2)
        xa = np.empty_like(xb)
        for sd in decomp:
            xa[sd.interior_flat] = local_analysis_etkf(
                sd, xb[sd.expansion_flat], net, y
            )
        obs = net.flat_locations
        err_b = np.linalg.norm(xb.mean(axis=1)[obs] - truth[obs])
        err_a = np.linalg.norm(xa.mean(axis=1)[obs] - truth[obs])
        assert err_a < err_b

    def test_no_local_obs_returns_background(self):
        grid, xb, _, _, _, _ = self.setup()
        net = ObservationNetwork(grid, ix=[15], iy=[7], obs_error_std=0.3)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        sd = decomp.subdomain(0, 0)
        out = local_analysis_etkf(sd, xb[sd.expansion_flat], net,
                                  np.zeros(1))
        assert np.allclose(out, xb[sd.interior_flat])

    def test_no_obs_with_inflation_still_inflates(self):
        grid, xb, _, _, _, _ = self.setup()
        net = ObservationNetwork(grid, ix=[15], iy=[7], obs_error_std=0.3)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        sd = decomp.subdomain(0, 0)
        out = local_analysis_etkf(sd, xb[sd.expansion_flat], net,
                                  np.zeros(1), inflation=1.5)
        got_spread = out.std(axis=1).mean()
        bg_spread = xb[sd.interior_flat].std(axis=1).mean()
        assert got_spread > bg_spread

    def test_wrong_expansion_shape(self):
        grid, xb, net, y, _, decomp = self.setup()
        sd = decomp.subdomain(0, 0)
        with pytest.raises(ValueError):
            local_analysis_etkf(sd, xb[:4], net, y)
