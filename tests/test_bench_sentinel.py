"""Tests for the bench regression sentinel (append-only history, robust
baselines, pass/warn/fail verdicts)."""

import json
import math

import pytest

from repro.telemetry import (
    BENCH_HISTORY_SCHEMA,
    append_history,
    check_regression,
    read_history,
    robust_baseline,
    sentinel_report,
)
from repro.telemetry.bench import BenchEntry


class TestHistoryFile:
    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, "doctor", {"wall_seconds": 1.5}, timestamp=10.0)
        append_history(
            path, "doctor", {"wall_seconds": 1.6},
            context={"cycles": 5}, timestamp=20.0,
        )
        entries = read_history(path)
        assert [e.values["wall_seconds"] for e in entries] == [1.5, 1.6]
        assert entries[0].schema == BENCH_HISTORY_SCHEMA
        assert entries[1].context == {"cycles": 5}
        assert entries[1].timestamp == 20.0

    def test_bench_filter(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, "a", {"x": 1.0})
        append_history(path, "b", {"x": 2.0})
        assert [e.bench for e in read_history(path, bench="b")] == ["b"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_non_finite_values_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="finite"):
            append_history(tmp_path / "h.jsonl", "x", {"bad": math.nan})
        with pytest.raises(ValueError, match="at least one"):
            append_history(tmp_path / "h.jsonl", "x", {})
        with pytest.raises(ValueError, match="non-empty"):
            append_history(tmp_path / "h.jsonl", "", {"x": 1.0})

    def test_reader_skips_garbage_and_foreign_schemas(self, tmp_path):
        """An accreted log must survive junk lines and schema bumps."""
        path = tmp_path / "history.jsonl"
        append_history(path, "doctor", {"x": 1.0})
        with path.open("a") as handle:
            handle.write("this is not json\n")
            handle.write(json.dumps({"schema": "senkf-bench-history/99",
                                     "bench": "doctor",
                                     "values": {"x": 9.0}}) + "\n")
            handle.write(json.dumps({"no": "bench"}) + "\n")
            handle.write("\n")
        append_history(path, "doctor", {"x": 2.0})
        entries = read_history(path)
        assert [e.values["x"] for e in entries] == [1.0, 2.0]


class TestRobustBaseline:
    def test_median_and_mad(self):
        median, mad = robust_baseline([1.0, 2.0, 3.0, 4.0, 100.0])
        assert median == 3.0
        assert mad == 1.0  # the outlier does not poison the spread

    def test_even_count_interpolates(self):
        median, _ = robust_baseline([1.0, 3.0])
        assert median == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_baseline([])


def entries(bench, samples, key="wall_seconds"):
    return [
        BenchEntry(bench=bench, values={key: s}, timestamp=float(k))
        for k, s in enumerate(samples)
    ]


class TestCheckRegression:
    def test_stable_value_passes(self):
        history = entries("b", [1.0, 1.01, 0.99, 1.02])
        (v,) = check_regression(history, "b", {"wall_seconds": 1.0})
        assert v.status == "pass" and v.ok
        assert v.median == pytest.approx(1.005)

    def test_large_regression_fails(self):
        history = entries("b", [1.0, 1.01, 0.99, 1.02])
        (v,) = check_regression(history, "b", {"wall_seconds": 3.0})
        assert v.status == "fail" and not v.ok

    def test_moderate_regression_warns(self):
        # band = max(MAD, 0.10·|median|) ≈ 0.1; 3·band < +0.45 < 6·band
        history = entries("b", [1.0, 1.0, 1.0, 1.0])
        (v,) = check_regression(history, "b", {"wall_seconds": 1.45})
        assert v.status == "warn" and v.ok

    def test_improvement_never_fails(self):
        history = entries("b", [1.0, 1.01, 0.99, 1.02])
        (v,) = check_regression(history, "b", {"wall_seconds": 0.01})
        assert v.status == "pass"

    def test_flat_history_tolerates_jitter(self):
        """MAD = 0 must not make the sentinel a zero-tolerance tripwire."""
        history = entries("b", [1.0, 1.0, 1.0, 1.0])
        (v,) = check_regression(history, "b", {"wall_seconds": 1.05})
        assert v.status == "pass"

    def test_insufficient_history_passes_with_note(self):
        history = entries("b", [1.0, 1.0])
        (v,) = check_regression(history, "b", {"wall_seconds": 99.0})
        assert v.status == "pass"
        assert "insufficient history" in v.reason

    def test_window_drops_stale_samples(self):
        """Only the trailing window feeds the baseline: an old fast era
        must not condemn today's (stable) slower era."""
        history = entries("b", [0.1] * 5 + [1.0] * 8)
        (v,) = check_regression(history, "b", {"wall_seconds": 1.02}, window=8)
        assert v.status == "pass"
        assert v.median == pytest.approx(1.0)

    def test_other_benches_ignored(self):
        history = entries("other", [9.0, 9.0, 9.0, 9.0])
        (v,) = check_regression(history, "b", {"wall_seconds": 1.0})
        assert "insufficient history" in v.reason

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError):
            check_regression([], "b", {"x": 1.0}, warn_mads=6.0, fail_mads=3.0)


class TestSentinelReport:
    def test_judges_latest_against_prior(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for value in (1.0, 1.01, 0.99, 1.02):
            append_history(path, "doctor", {"wall_seconds": value})
        append_history(path, "doctor", {"wall_seconds": 5.0})
        text, verdicts = sentinel_report(path)
        assert "overall: FAIL" in text
        (v,) = [v for v in verdicts if v.status == "fail"]
        assert v.bench == "doctor" and v.key == "wall_seconds"

    def test_multiple_benches_roll_up(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for value in (1.0, 1.0, 1.0, 1.0):
            append_history(path, "a", {"x": value})
            append_history(path, "b", {"x": value})
        text, verdicts = sentinel_report(path)
        assert "overall: PASS" in text
        assert {v.bench for v in verdicts} == {"a", "b"}

    def test_empty_history_renders_placeholder(self, tmp_path):
        text, verdicts = sentinel_report(tmp_path / "none.jsonl")
        assert "no entries" in text
        assert verdicts == []

    def test_memory_column_shows_latest_peak_rss(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for _ in range(3):
            append_history(
                path, "mem",
                {"wall_seconds": 1.0, "peak_rss_bytes": 128e6},
            )
        append_history(path, "old", {"wall_seconds": 1.0})
        text, _ = sentinel_report(path)
        assert "peak RSS" in text
        assert "128 MB" in text
        # A bench that never recorded memory renders the placeholder.
        old_rows = [ln for ln in text.splitlines() if ln.lstrip().startswith("old")]
        assert old_rows and " - " in old_rows[0] + " "
