"""Tests for the parallel analysis engine (:mod:`repro.parallel`).

The load-bearing guarantee is *bit-identity*: every execution strategy —
serial loop, thread pool, process pool over shared memory — must produce
byte-for-byte the same analysis as the classic serial engine, for every
filter kind (DistributedEnKF, layered S-EnKF, LETKF), including the
degenerate configurations (one worker, more workers than pieces,
sub-domains with no observations).  On top sit the shared-memory
lifecycle contract, the geometry cache's reuse semantics (a cycling
campaign must never re-derive cycle-invariant geometry), and the
telemetry flow from pool workers back into the parent tracer.
"""

import pickle

import numpy as np
import pytest

from repro.core import Decomposition, Grid, ObservationNetwork
from repro.core.domain import SubDomain
from repro.filters import LETKF, SEnKF
from repro.filters.distributed import DistributedEnKF
from repro.models import correlated_ensemble
from repro.parallel import (
    AnalysisExecutor,
    AnalysisPlan,
    GeometryCache,
    KIND_ENKF,
    SharedArraySpec,
    SharedEnsemble,
    attach_array,
)
from repro.telemetry import MetricsRegistry, Tracer, use_metrics, use_tracer

STRATEGIES = ("serial", "thread", "process")


def problem(n_x=16, n_y=8, n_members=12, m=40, seed=0):
    grid = Grid(n_x=n_x, n_y=n_y, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(seed)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, n_members, length_scale_km=4.0, rng=rng
    )
    net = ObservationNetwork.random(grid, m=m, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    return grid, truth, states, net, y


# ---------------------------------------------------------------------------
# Shared-memory lifecycle
# ---------------------------------------------------------------------------
class TestSharedEnsemble:
    def test_roundtrip_through_spec(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((32, 6))
        with SharedEnsemble.from_array(data) as shm:
            assert np.array_equal(shm.array, data)
            attached = attach_array(shm.spec)
            assert np.array_equal(attached.array, data)
            # Zero-copy: a write on one side is visible on the other.
            attached.array[3, 2] = 99.0
            assert shm.array[3, 2] == 99.0
            attached.release()
            assert attached.array is None

    def test_create_zero_filled(self):
        with SharedEnsemble.create((8, 3)) as shm:
            assert shm.array.shape == (8, 3)
            assert np.all(shm.array == 0.0)

    def test_dispose_is_idempotent_and_unlinks(self):
        shm = SharedEnsemble.create((4, 2))
        spec = shm.spec
        shm.dispose()
        shm.dispose()  # second dispose is a no-op
        with pytest.raises(ValueError):
            shm.array
        with pytest.raises(FileNotFoundError):
            attach_array(spec)  # the segment really is gone

    def test_spec_is_picklable_and_sized(self):
        spec = SharedArraySpec(name="x", shape=(10, 4), dtype="<f8")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert spec.nbytes == 10 * 4 * 8


# ---------------------------------------------------------------------------
# Geometry cache
# ---------------------------------------------------------------------------
class TestGeometryCache:
    def _setup(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        return decomp, net

    def test_hit_on_second_lookup(self):
        decomp, net = self._setup()
        cache = GeometryCache()
        sd = next(iter(decomp))
        geo1, cached1 = cache.get(net, sd, radius_km=2.0)
        geo2, cached2 = cache.get(net, sd, radius_km=2.0)
        assert (cached1, cached2) == (False, True)
        assert geo1 is geo2
        stats = cache.stats
        assert {k: stats[k] for k in ("hits", "misses", "entries")} == {
            "hits": 1, "misses": 1, "entries": 1
        }
        assert stats["bytes"] == cache.nbytes() > 0

    def test_structurally_equal_piece_hits(self):
        # S-EnKF rebuilds equal layer SubDomains every call; the cache
        # must key them structurally, not by object identity.
        decomp, net = self._setup()
        cache = GeometryCache()
        sd = next(iter(decomp))
        clone = SubDomain(grid=sd.grid, i=sd.i, j=sd.j, ix0=sd.ix0,
                          ix1=sd.ix1, iy0=sd.iy0, iy1=sd.iy1,
                          xi=sd.xi, eta=sd.eta)
        cache.get(net, sd, radius_km=2.0)
        _, cached = cache.get(net, clone, radius_km=2.0)
        assert cached

    def test_distinct_network_and_radius_miss(self):
        decomp, net = self._setup()
        other_net = ObservationNetwork.random(
            decomp.grid, m=10, rng=np.random.default_rng(9)
        )
        cache = GeometryCache()
        sd = next(iter(decomp))
        cache.get(net, sd, radius_km=2.0)
        assert not cache.get(other_net, sd, radius_km=2.0)[1]
        assert not cache.get(net, sd, radius_km=3.0)[1]
        assert not cache.get(net, sd, None)[1]

    def test_maxsize_evicts_oldest(self):
        decomp, net = self._setup()
        cache = GeometryCache(maxsize=2)
        pieces = list(decomp)[:3]
        for sd in pieces:
            cache.get(net, sd, radius_km=2.0)
        assert len(cache) == 2
        assert not cache.get(net, pieces[0], radius_km=2.0)[1]  # evicted

    def test_geometry_matches_direct_derivation(self):
        decomp, net = self._setup()
        sd = next(iter(decomp))
        geo = GeometryCache().local_geometry(net, sd, radius_km=2.0)
        positions, h_local = net.restrict_to_box(
            sd.exp_x_indices, sd.exp_y_indices
        )
        assert np.array_equal(geo.obs_positions, positions)
        assert (geo.h_local != h_local).nnz == 0
        assert np.array_equal(geo.interior_positions,
                              sd.interior_positions_in_expansion)
        assert geo.predecessors is not None

    def test_cycling_never_rederives_geometry(self, monkeypatch):
        """Across cycles, restrict_to_box and the Cholesky stencil are
        computed exactly once per piece (the cache eliminates them)."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        calls = {"restrict": 0, "stencil": 0}

        real_restrict = ObservationNetwork.restrict_to_box

        def counting_restrict(self, *args, **kwargs):
            calls["restrict"] += 1
            return real_restrict(self, *args, **kwargs)

        monkeypatch.setattr(
            ObservationNetwork, "restrict_to_box", counting_restrict
        )
        import repro.parallel.geometry as geometry_mod

        real_stencil = geometry_mod.neighbour_predecessors

        def counting_stencil(*args, **kwargs):
            calls["stencil"] += 1
            return real_stencil(*args, **kwargs)

        monkeypatch.setattr(
            geometry_mod, "neighbour_predecessors", counting_stencil
        )

        filt = DistributedEnKF(radius_km=2.0, inflation=1.05)
        filt.assimilate(decomp, states, net, y, rng=1)
        first_cycle = dict(calls)
        assert first_cycle["restrict"] == decomp.n_subdomains
        for _ in range(3):
            filt.assimilate(decomp, states, net, y, rng=1)
        assert calls == first_cycle  # later cycles: zero re-derivations


# ---------------------------------------------------------------------------
# Executor mechanics
# ---------------------------------------------------------------------------
class TestExecutorConfig:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AnalysisExecutor(strategy="gpu")
        with pytest.raises(ValueError):
            AnalysisExecutor(workers=0)
        with pytest.raises(ValueError):
            AnalysisExecutor(prefetch_depth=0)

    def test_closed_executor_refuses_work(self):
        ex = AnalysisExecutor(strategy="serial")
        ex.close()
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        plan = AnalysisPlan(
            kind=KIND_ENKF, pieces=list(decomp), states=states,
            obs=np.zeros((net.m, states.shape[1])), out=np.empty_like(states),
            network=net, params={"radius_km": 2.0, "ridge": 1e-8,
                                 "sparse_solver": False},
        )
        with pytest.raises(ValueError):
            ex.run(plan)

    def test_auto_resolves_serial_for_tiny_plans(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        plan = AnalysisPlan(
            kind=KIND_ENKF, pieces=list(decomp), states=states,
            obs=np.zeros((net.m, states.shape[1])), out=np.empty_like(states),
            network=net, params={"radius_km": 2.0, "ridge": 1e-8,
                                 "sparse_solver": False},
        )
        with AnalysisExecutor(strategy="auto", workers=4) as ex:
            assert ex.resolve(plan) == "serial"
        with AnalysisExecutor(strategy="auto", workers=1) as ex:
            assert ex.resolve(plan) == "serial"

    def test_effective_workers_capped_by_pieces(self):
        ex = AnalysisExecutor(workers=16)
        assert ex.effective_workers(3) == 3
        ex.close()

    def test_filter_rejects_executor_and_workers(self):
        with pytest.raises(ValueError):
            DistributedEnKF(radius_km=2.0, workers=2,
                            executor=AnalysisExecutor(strategy="serial"))

    def test_subdomain_pickles_without_cached_arrays(self):
        grid = Grid(n_x=8, n_y=4, dx_km=1.0, dy_km=1.0)
        sd = Decomposition(grid, 2, 2, xi=1, eta=1).subdomain(0, 0)
        _ = sd.expansion_flat  # populate the caches
        clone = pickle.loads(pickle.dumps(sd))
        assert "expansion_flat" not in vars(clone)  # rebuilt lazily, not shipped
        assert np.array_equal(clone.expansion_flat, sd.expansion_flat)


# ---------------------------------------------------------------------------
# Bit-identity across strategies and filters
# ---------------------------------------------------------------------------
def _enkf_pair(executor):
    serial = DistributedEnKF(radius_km=2.0, inflation=1.05)
    parallel = DistributedEnKF(radius_km=2.0, inflation=1.05,
                               executor=executor)
    return serial, parallel


class TestBitIdentity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_distributed_enkf(self, strategy):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        with AnalysisExecutor(strategy=strategy, workers=2) as ex:
            serial, parallel = _enkf_pair(ex)
            ref = serial.assimilate(decomp, states, net, y, rng=7)
            out = parallel.assimilate(decomp, states, net, y, rng=7)
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_senkf_layered(self, strategy):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        serial = SEnKF(radius_km=2.0, n_layers=2, inflation=1.02)
        ref = serial.assimilate(decomp, states, net, y, rng=5)
        with AnalysisExecutor(strategy=strategy, workers=2) as ex:
            parallel = SEnKF(radius_km=2.0, n_layers=2, inflation=1.02,
                             executor=ex)
            out = parallel.assimilate(decomp, states, net, y, rng=5)
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_letkf(self, strategy):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        ref = LETKF(inflation=1.03).assimilate(decomp, states, net, y)
        with AnalysisExecutor(strategy=strategy, workers=2) as ex:
            out = LETKF(inflation=1.03, executor=ex).assimilate(
                decomp, states, net, y
            )
        assert np.array_equal(ref, out)

    def test_sparse_solver_path(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        serial = DistributedEnKF(radius_km=2.0, sparse_solver=True)
        ref = serial.assimilate(decomp, states, net, y, rng=3)
        with AnalysisExecutor(strategy="process", workers=2) as ex:
            parallel = DistributedEnKF(radius_km=2.0, sparse_solver=True,
                                       executor=ex)
            out = parallel.assimilate(decomp, states, net, y, rng=3)
        assert np.array_equal(ref, out)

    def test_workers_one_is_bitwise_serial(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        serial = DistributedEnKF(radius_km=2.0)
        ref = serial.assimilate(decomp, states, net, y, rng=11)
        filt = DistributedEnKF(radius_km=2.0, workers=1)
        try:
            out = filt.assimilate(decomp, states, net, y, rng=11)
        finally:
            filt.close()
        assert np.array_equal(ref, out)

    def test_more_workers_than_subdomains(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        ref = DistributedEnKF(radius_km=2.0).assimilate(
            decomp, states, net, y, rng=2
        )
        with AnalysisExecutor(strategy="process", workers=16) as ex:
            out = DistributedEnKF(radius_km=2.0, executor=ex).assimilate(
                decomp, states, net, y, rng=2
            )
        assert np.array_equal(ref, out)

    def test_empty_observation_subdomains_under_process_pool(self):
        """Sub-domains whose expansion sees no observation return the
        (inflated) background — also under the shared-memory pool."""
        grid = Grid(n_x=16, n_y=8, dx_km=1.0, dy_km=1.0)
        rng = np.random.default_rng(4)
        states = rng.standard_normal((grid.n, 8))
        # All observations in the left quarter: right-side boxes are empty.
        net = ObservationNetwork(
            grid, ix=np.arange(4), iy=np.zeros(4, dtype=int),
            obs_error_std=0.5,
        )
        y = rng.standard_normal(net.m)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        empty = [
            sd for sd in decomp
            if net.restrict_to_box(sd.exp_x_indices, sd.exp_y_indices)[0].size == 0
        ]
        assert empty, "fixture must include unobserved sub-domains"
        ref = DistributedEnKF(radius_km=2.0, inflation=1.1).assimilate(
            decomp, states, net, y, rng=6
        )
        with AnalysisExecutor(strategy="process", workers=2) as ex:
            out = DistributedEnKF(radius_km=2.0, inflation=1.1,
                                  executor=ex).assimilate(
                decomp, states, net, y, rng=6
            )
        assert np.array_equal(ref, out)
        # LETKF's empty branch applies inflation to the anomalies.
        lref = LETKF(inflation=1.1).assimilate(decomp, states, net, y)
        with AnalysisExecutor(strategy="process", workers=2) as ex:
            lout = LETKF(inflation=1.1, executor=ex).assimilate(
                decomp, states, net, y
            )
        assert np.array_equal(lref, lout)

    def test_repeated_calls_reuse_pool_and_stay_identical(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        serial = DistributedEnKF(radius_km=2.0)
        with AnalysisExecutor(strategy="process", workers=2) as ex:
            filt = DistributedEnKF(radius_km=2.0, executor=ex)
            for seed in (1, 2, 3):
                ref = serial.assimilate(decomp, states, net, y, rng=seed)
                out = filt.assimilate(decomp, states, net, y, rng=seed)
                assert np.array_equal(ref, out)

    def test_degraded_analysis_matches_inflation_override(self):
        """Satellite: graceful degradation no longer copies the filter —
        the compensation arrives as assimilate's per-call override."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        filt = DistributedEnKF(radius_km=2.0, inflation=1.05)
        analysed, result = filt.assimilate_degraded(
            decomp, states, net, y, dropped=(1, 4), rng=9
        )
        assert filt.inflation == 1.05  # engine state untouched
        expected = filt.assimilate(
            decomp, states[:, result.surviving], net, y, rng=9,
            inflation=1.05 * result.compensation,
        )
        assert np.array_equal(analysed, expected)


# ---------------------------------------------------------------------------
# Telemetry flow
# ---------------------------------------------------------------------------
class TestParallelTelemetry:
    def _run(self, strategy, cycles=1):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        with use_tracer(tracer), use_metrics(metrics):
            with AnalysisExecutor(strategy=strategy, workers=2) as ex:
                filt = DistributedEnKF(radius_km=2.0, executor=ex)
                for seed in range(cycles):
                    filt.assimilate(decomp, states, net, y, rng=seed)
        return tracer, metrics, decomp

    def test_run_and_prepare_spans_recorded(self):
        tracer, metrics, decomp = self._run("serial")
        names = [s.name for s in tracer.spans]
        assert names.count("parallel.run") == 1
        assert names.count("parallel.prepare") == decomp.n_subdomains
        assert names.count("parallel.local_analysis") == decomp.n_subdomains
        run_span = next(s for s in tracer.spans if s.name == "parallel.run")
        assert run_span.attrs["strategy"] == "serial"
        snap = metrics.snapshot()
        assert snap["counters"]["parallel.pieces"] == decomp.n_subdomains
        assert snap["counters"]["geometry.cache_misses"] == decomp.n_subdomains

    def test_worker_spans_flow_to_parent_tracer(self):
        tracer, metrics, decomp = self._run("process")
        worker_spans = [
            s for s in tracer.spans
            if s.name == "parallel.local_analysis"
            and s.track.startswith("worker-")
        ]
        assert len(worker_spans) == decomp.n_subdomains
        for span in worker_spans:
            assert span.duration >= 0
            assert span.end <= tracer.now()
            assert "n_obs" in span.attrs
        snap = metrics.snapshot()
        assert snap["counters"]["parallel.chunks"] >= 1

    def test_worker_spans_survive_chrome_round_trip(self, tmp_path):
        """A real process-pool capture — parent spans on "main", worker
        spans on ``worker-<pid>`` tracks — must re-import from its Chrome
        export with track assignment and nesting intact."""
        from repro.telemetry import spans_from_chrome, write_chrome_trace

        tracer, metrics, decomp = self._run("process")
        path = write_chrome_trace(tmp_path / "trace.json", tracer=tracer)
        restored = {s.span_id: s for s in spans_from_chrome(path)}
        original = {s.span_id: s for s in tracer.spans}
        assert set(restored) == set(original)
        worker_tracks = set()
        for span_id, span in restored.items():
            ref = original[span_id]
            assert span.track == ref.track
            assert span.parent_id == ref.parent_id
            if span.track.startswith("worker-"):
                worker_tracks.add(span.track)
        assert worker_tracks  # the pool really fanned out
        restored_workers = [
            s for s in restored.values()
            if s.name == "parallel.local_analysis"
            and s.track.startswith("worker-")
        ]
        assert len(restored_workers) == decomp.n_subdomains

    def test_cycling_prepare_spans_turn_cached(self):
        """The telemetry view of the geometry cache: cycle 1 prepares are
        cache misses, every later cycle's are hits."""
        tracer, metrics, decomp = self._run("serial", cycles=3)
        prepares = [s for s in tracer.spans if s.name == "parallel.prepare"]
        n = decomp.n_subdomains
        assert len(prepares) == 3 * n
        ordered = sorted(prepares, key=lambda s: s.start)
        assert all(not s.attrs["cached"] for s in ordered[:n])
        assert all(s.attrs["cached"] for s in ordered[n:])
        snap = metrics.snapshot()
        assert snap["counters"]["geometry.cache_hits"] == 2 * n
