"""Tests for the rotating shallow-water model."""

import numpy as np
import pytest

from repro.core import Grid
from repro.core.analysis import analysis_gain_form
from repro.core.observations import perturb_observations
from repro.models.grf import gaussian_random_field
from repro.models.shallow_water import ShallowWaterModel


def make_model(n_x=32, n_y=16, **kw):
    grid = Grid(n_x=n_x, n_y=n_y)
    defaults = dict(depth=100.0, gravity=9.8, coriolis=1e-4, dt=10.0, dx=1e4)
    defaults.update(kw)
    return ShallowWaterModel(grid, **defaults)


def initial_bump(model, amp=1.0, rng=0):
    h = model.grid.as_field(
        gaussian_random_field(model.grid, length_scale_km=5.0, std=amp, rng=rng)
    )
    zeros = np.zeros(model.grid.shape)
    return model.pack(h, zeros, zeros)


class TestPackUnpack:
    def test_roundtrip(self):
        model = make_model()
        rng = np.random.default_rng(0)
        h, u, v = (rng.normal(size=model.grid.shape) for _ in range(3))
        h2, u2, v2 = model.unpack(model.pack(h, u, v))
        assert np.array_equal(h, h2)
        assert np.array_equal(u, u2)
        assert np.array_equal(v, v2)

    def test_state_size(self):
        model = make_model(n_x=8, n_y=4)
        assert model.state_size == 3 * 32

    def test_bad_state_shape(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.unpack(np.zeros(7))

    def test_h_indices_select_height(self):
        model = make_model(n_x=8, n_y=4)
        state = np.arange(float(model.state_size))
        assert np.array_equal(state[model.h_indices()], np.arange(32.0))


class TestDynamics:
    def test_cfl_guard(self):
        with pytest.raises(ValueError):
            make_model(dt=1e4)

    def test_flat_state_is_steady(self):
        model = make_model()
        state = np.zeros(model.state_size)
        assert np.allclose(model.step(state, 10), state)

    def test_mass_conserved(self):
        model = make_model()
        state = initial_bump(model)
        h0, _, _ = model.unpack(state)
        h1, _, _ = model.unpack(model.step(state, 50))
        assert h1.sum() == pytest.approx(h0.sum(), rel=1e-6)

    def test_energy_approximately_conserved(self):
        model = make_model()
        state = initial_bump(model)
        e0 = model.energy(state)
        e1 = model.energy(model.step(state, 100))
        assert e1 == pytest.approx(e0, rel=0.05)

    def test_gravity_wave_spreads_disturbance(self):
        """A local bump radiates: far-field h becomes nonzero at roughly
        the gravity-wave speed sqrt(gH)."""
        model = make_model(n_x=64, n_y=8, coriolis=0.0)
        h = np.zeros(model.grid.shape)
        h[:, 32] = 1.0
        state = model.pack(h, np.zeros_like(h), np.zeros_like(h))
        # Wave speed ~31.3 m/s; to cross 16 cells (1.6e5 m) takes ~5100 s
        # = 510 steps of dt=10.
        out_h, _, _ = model.unpack(model.step(state, 600))
        assert np.abs(out_h[:, 48]).max() > 1e-3
        # But a much shorter integration has not reached that far.
        early_h, _, _ = model.unpack(model.step(state, 50))
        assert np.abs(early_h[:, 48]).max() < np.abs(out_h[:, 48]).max()

    def test_geostrophic_state_nearly_steady(self):
        """A balanced state evolves much more slowly than an unbalanced one
        with the same height field (the classic rotation demonstration)."""
        model = make_model(coriolis=1e-3)
        h = model.grid.as_field(
            gaussian_random_field(model.grid, length_scale_km=8.0,
                                  std=0.05, rng=1)
        )
        # Window the field so it is flat at the walls: the discrete
        # geostrophic v vanishes there and the rigid-wall clamp does not
        # break the balance.
        window = np.sin(
            np.pi * np.arange(model.grid.n_y) / (model.grid.n_y - 1)
        )[:, None] ** 2
        h = h * window
        balanced = model.geostrophic_state(h)
        unbalanced = model.pack(h, np.zeros_like(h), np.zeros_like(h))
        steps = 50
        drift_bal = np.linalg.norm(model.step(balanced, steps) - balanced)
        drift_unbal = np.linalg.norm(model.step(unbalanced, steps) - unbalanced)
        assert drift_bal < 0.5 * drift_unbal

    def test_walls_keep_v_zero(self):
        model = make_model()
        state = initial_bump(model, rng=2)
        _, _, v = model.unpack(model.step(state, 30))
        assert np.allclose(v[0], 0.0)
        assert np.allclose(v[-1], 0.0)

    def test_ensemble_step_matches_member_step(self):
        model = make_model(n_x=16, n_y=8)
        states = np.column_stack([initial_bump(model, rng=k) for k in range(3)])
        out = model.step_ensemble(states, 5)
        for k in range(3):
            assert np.allclose(out[:, k], model.step(states[:, k], 5))


class TestMultivariateAssimilation:
    def test_h_observations_update_velocities(self):
        """Observing only h must reduce u/v errors through ensemble
        cross-covariances (the multivariate EnKF payoff)."""
        model = make_model(n_x=16, n_y=8, coriolis=1e-3)
        rng = np.random.default_rng(5)

        def random_balanced(seed):
            h = model.grid.as_field(
                gaussian_random_field(model.grid, length_scale_km=6.0,
                                      std=0.1, rng=seed)
            )
            return model.geostrophic_state(h)

        truth = random_balanced(100)
        n_members = 40
        members = np.column_stack(
            [random_balanced(200 + k) for k in range(n_members)]
        )

        # Observe h at every 2nd grid point.
        h_idx = model.h_indices()[::2]
        m = h_idx.size
        h_op = np.zeros((m, model.state_size))
        h_op[np.arange(m), h_idx] = 1.0
        sigma = 0.01
        y = h_op @ truth + rng.normal(0, sigma, m)
        ys = perturb_observations(y, sigma, n_members, rng=rng)
        analysed = analysis_gain_form(members, h_op, np.full(m, sigma**2), ys)

        n = model.grid.n
        uv = slice(n, 3 * n)
        err_b = np.linalg.norm(members.mean(axis=1)[uv] - truth[uv])
        err_a = np.linalg.norm(analysed.mean(axis=1)[uv] - truth[uv])
        assert err_a < err_b  # velocities improved without being observed
