"""Tests for ES-MDA and the Desroziers diagnostics."""

import numpy as np
import pytest

from repro.core.analysis import analysis_gain_form
from repro.core.diagnostics import desroziers_diagnostics
from repro.core.esmda import esmda, mda_coefficients
from repro.core.observations import perturb_observations


def linear_problem(n=10, n_members=2000, m=6, seed=0, rho=0.6, sigma=0.5):
    rng = np.random.default_rng(seed)
    cov = rho ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    chol = np.linalg.cholesky(cov)
    truth = chol @ rng.standard_normal(n)
    mean_err = chol @ rng.standard_normal(n)
    xb = (truth + mean_err)[:, None] + chol @ rng.standard_normal((n, n_members))
    h = np.eye(n)[:m]
    y = h @ truth + rng.normal(0, sigma, m)
    return truth, xb, h, np.full(m, sigma**2), y


class TestMdaCoefficients:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_inverse_sums_to_one_constant(self, k):
        alphas = mda_coefficients(k)
        assert np.sum(1.0 / alphas) == pytest.approx(1.0)
        assert np.allclose(alphas, k)

    @pytest.mark.parametrize("ratio", [0.5, 2.0, 3.0])
    def test_inverse_sums_to_one_geometric(self, ratio):
        alphas = mda_coefficients(5, geometric_ratio=ratio)
        assert np.sum(1.0 / alphas) == pytest.approx(1.0)

    def test_geometric_ratio_orders_damping(self):
        alphas = mda_coefficients(4, geometric_ratio=2.0)
        # ratio > 1: inverse coefficients grow => alphas decrease.
        assert np.all(np.diff(alphas) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mda_coefficients(0)
        with pytest.raises(ValueError):
            mda_coefficients(3, geometric_ratio=0.0)


class TestEsmda:
    def test_single_iteration_is_an_enkf_update(self):
        """K=1 with matching perturbations equals one stochastic update."""
        truth, xb, h, r_diag, y = linear_problem(n_members=50)
        out = esmda(xb, h, r_diag, y, n_iterations=1, rng=7)
        # Reproduce the internal perturbation stream.
        rng = np.random.default_rng(7)
        eps = rng.normal(size=(y.size, 50)) * np.sqrt(1.0 * r_diag)[:, None]
        eps -= eps.mean(axis=1, keepdims=True)
        ys = y[:, None] + eps
        want = analysis_gain_form(xb, h, r_diag, ys)
        assert np.allclose(out, want)

    @pytest.mark.parametrize("k", [2, 4])
    def test_multi_iteration_matches_single_on_linear_gaussian(self, k):
        """The ES-MDA composition equals one full update for linear H
        (up to sampling noise, so compare means with a large ensemble)."""
        truth, xb, h, r_diag, y = linear_problem(n_members=4000, seed=1)
        one = esmda(xb, h, r_diag, y, n_iterations=1, rng=2)
        many = esmda(xb, h, r_diag, y, n_iterations=k, rng=3)
        assert np.abs(one.mean(axis=1) - many.mean(axis=1)).max() < 0.1

    def test_reduces_error(self):
        truth, xb, h, r_diag, y = linear_problem(n_members=100, seed=4)
        out = esmda(xb, h, r_diag, y, n_iterations=4, rng=5)
        err_b = np.linalg.norm(xb.mean(axis=1) - truth)
        err_a = np.linalg.norm(out.mean(axis=1) - truth)
        assert err_a < err_b

    def test_reproducible(self):
        truth, xb, h, r_diag, y = linear_problem(n_members=30)
        a = esmda(xb, h, r_diag, y, rng=11)
        b = esmda(xb, h, r_diag, y, rng=11)
        assert np.array_equal(a, b)

    def test_validation(self):
        truth, xb, h, r_diag, y = linear_problem(n_members=30)
        with pytest.raises(ValueError):
            esmda(xb[:, :1], h, r_diag, y)
        with pytest.raises(ValueError):
            esmda(xb, h, r_diag, y[:-1])


class TestDesroziers:
    def run_consistent_system(self, sigma_used, sigma_true, seed=0):
        """Assimilate with sigma_used while the data carry sigma_true noise."""
        rng = np.random.default_rng(seed)
        n, m, members = 40, 40, 4000
        cov = 0.7 ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        chol = np.linalg.cholesky(cov)
        truth = chol @ rng.standard_normal(n)
        xb = (truth + chol @ rng.standard_normal(n))[:, None] + \
            chol @ rng.standard_normal((n, members))
        h = np.eye(n)
        y = h @ truth + rng.normal(0, sigma_true, m)
        r_diag = np.full(m, sigma_used**2)
        ys = perturb_observations(y, sigma_used, members, rng=rng)
        xa = analysis_gain_form(xb, h, r_diag, ys)
        return desroziers_diagnostics(xb, xa, h, y, sigma_used**2)

    def test_estimated_hbht_positive(self):
        stats = self.run_consistent_system(0.5, 0.5)
        assert stats.estimated_hbht > 0

    def test_innovation_identity_holds_in_expectation(self):
        """Averaged over seeds, E[d_b^2] ≈ HBH^T + R for a consistent system."""
        ratios = [
            self.run_consistent_system(0.5, 0.5, seed=s)
            .innovation_consistency_ratio
            for s in range(8)
        ]
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.35)

    def test_detects_underestimated_r(self):
        """Assimilating with sigma smaller than the real noise shows up as
        a consistency ratio above 1 (on average over realisations)."""
        ratios_wrong = [
            self.run_consistent_system(0.5, 1.5, seed=s).r_consistency_ratio
            for s in range(8)
        ]
        ratios_right = [
            self.run_consistent_system(0.5, 0.5, seed=s).r_consistency_ratio
            for s in range(8)
        ]
        assert np.mean(ratios_wrong) > 2.0 * np.mean(ratios_right)

    def test_validation(self):
        with pytest.raises(ValueError):
            desroziers_diagnostics(
                np.zeros((3, 4)), np.zeros((3, 5)), np.eye(3), np.zeros(3), 1.0
            )
        with pytest.raises(ValueError):
            desroziers_diagnostics(
                np.zeros((3, 4)), np.zeros((3, 4)), np.eye(3), np.zeros(2), 1.0
            )
        with pytest.raises(ValueError):
            desroziers_diagnostics(
                np.zeros((3, 4)), np.zeros((3, 4)), np.eye(3), np.zeros(3), 0.0
            )
