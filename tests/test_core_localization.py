"""Tests for localization: halos, local boxes, Gaspari-Cohn."""

import numpy as np
import pytest

from repro.core import Grid, gaspari_cohn, local_box, radius_to_halo


class TestRadiusToHalo:
    def test_paper_figure2_example(self):
        """Fig. 2(a): r = 10 km with anisotropic spacing gives ξ=4, η=2."""
        assert radius_to_halo(10.0, 2.5, 5.0) == (4, 2)

    def test_isotropic(self):
        assert radius_to_halo(10.0, 5.0, 5.0) == (2, 2)

    def test_ceil_behaviour(self):
        assert radius_to_halo(10.0, 3.0, 3.0) == (4, 4)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            radius_to_halo(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            radius_to_halo(1.0, -1.0, 1.0)


class TestLocalBox:
    def test_interior_box_full_size(self):
        g = Grid(n_x=100, n_y=50)
        box = local_box(g, ix=50, iy=25, xi=4, eta=2)
        assert len(box.x_indices) == 9
        assert len(box.y_indices) == 5
        assert box.size == 45

    def test_periodic_wrap_in_x(self):
        g = Grid(n_x=100, n_y=50, periodic_x=True)
        box = local_box(g, ix=0, iy=25, xi=2, eta=1)
        assert set(box.x_indices) == {98, 99, 0, 1, 2}

    def test_nonperiodic_truncates_x(self):
        g = Grid(n_x=100, n_y=50, periodic_x=False)
        box = local_box(g, ix=0, iy=25, xi=2, eta=1)
        assert set(box.x_indices) == {0, 1, 2}

    def test_clamped_at_south_pole(self):
        g = Grid(n_x=100, n_y=50)
        box = local_box(g, ix=50, iy=0, xi=1, eta=3)
        assert set(box.y_indices) == {0, 1, 2, 3}

    def test_clamped_at_north_pole(self):
        g = Grid(n_x=100, n_y=50)
        box = local_box(g, ix=50, iy=49, xi=1, eta=3)
        assert set(box.y_indices) == {46, 47, 48, 49}

    def test_tiny_mesh_no_duplicate_columns(self):
        g = Grid(n_x=4, n_y=4, periodic_x=True)
        box = local_box(g, ix=1, iy=1, xi=5, eta=0)
        assert sorted(box.x_indices) == [0, 1, 2, 3]

    def test_flat_indices_unique_and_in_range(self):
        g = Grid(n_x=20, n_y=10)
        box = local_box(g, ix=0, iy=0, xi=3, eta=2)
        flat = box.flat_indices(g)
        assert len(np.unique(flat)) == box.size
        assert flat.min() >= 0 and flat.max() < g.n

    def test_center_always_inside(self):
        g = Grid(n_x=20, n_y=10)
        for ix, iy in [(0, 0), (19, 9), (5, 5)]:
            box = local_box(g, ix=ix, iy=iy, xi=2, eta=2)
            assert g.flat_index(ix, iy) in set(box.flat_indices(g))

    def test_out_of_range_center_rejected(self):
        g = Grid(n_x=20, n_y=10)
        with pytest.raises(ValueError):
            local_box(g, ix=20, iy=0, xi=1, eta=1)
        with pytest.raises(ValueError):
            local_box(g, ix=0, iy=-1, xi=1, eta=1)

    def test_negative_halo_rejected(self):
        g = Grid(n_x=20, n_y=10)
        with pytest.raises(ValueError):
            local_box(g, ix=0, iy=0, xi=-1, eta=1)


class TestGaspariCohn:
    def test_value_at_zero_is_one(self):
        assert gaspari_cohn(np.array([0.0]), support=10.0)[0] == pytest.approx(1.0)

    def test_zero_beyond_support(self):
        out = gaspari_cohn(np.array([10.0, 11.0, 100.0]), support=10.0)
        assert np.allclose(out, 0.0, atol=1e-12)

    def test_monotone_decreasing(self):
        d = np.linspace(0, 10, 50)
        out = gaspari_cohn(d, support=10.0)
        assert np.all(np.diff(out) <= 1e-12)

    def test_continuous_at_half_support(self):
        eps = 1e-9
        support = 8.0
        below = gaspari_cohn(np.array([4.0 - eps]), support)[0]
        above = gaspari_cohn(np.array([4.0 + eps]), support)[0]
        assert below == pytest.approx(above, abs=1e-6)

    def test_bounded_zero_one(self):
        d = np.linspace(0, 20, 200)
        out = gaspari_cohn(d, support=10.0)
        assert np.all(out >= -1e-12) and np.all(out <= 1.0 + 1e-12)

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            gaspari_cohn(np.array([1.0]), support=0.0)

    def test_matrix_input_preserves_shape(self):
        d = np.ones((3, 4))
        assert gaspari_cohn(d, support=10.0).shape == (3, 4)
