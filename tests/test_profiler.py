"""The resource observatory: sampling profiler + memory attribution.

Covers the profiler's edge cases (start/stop idempotence, disabled-path
zero overhead, worker-sample merge round-trips through both export
formats), tracemalloc-unavailable degradation, the shared-segment
registry's leak accounting, the footprint join's drift conventions and
the ``senkf-profile/1`` validator.
"""

import gc
import json
import threading
import time

import numpy as np
import pytest

from repro.telemetry import memprof
from repro.telemetry.memprof import (
    PROFILE_SCHEMA,
    MemoryProfiler,
    SharedSegmentRegistry,
    build_profile_report,
    current_rss_bytes,
    default_memory_rules,
    footprint_attribution,
    peak_rss_bytes,
    publish_memory_gauges,
    shared_segment_registry,
    validate_profile_report,
    write_profile_report,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    SamplingProfiler,
    UNTRACED_PHASE,
    WorkerSampler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.telemetry.tracer import Tracer, use_tracer


def spin(seconds):
    """Busy-loop long enough for the sampler to catch us."""
    deadline = time.perf_counter() + seconds
    x = 0.0
    while time.perf_counter() < deadline:
        x += np.dot(np.ones(64), np.ones(64))
    return x


class TestSamplingProfiler:
    def test_collects_attributed_samples(self):
        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001)
        with use_tracer(tracer), profiler:
            with tracer.span("work", category="compute"):
                spin(0.15)
        report = profiler.report()
        assert report["n_samples"] > 0
        assert report["phase_samples"].get("compute", 0) > 0
        assert report["attributed_fraction"] > 0.5
        assert "main" in report["tracks"]

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        profiler.start()  # second start is a no-op, not a second thread
        assert threading.active_count() == threading.active_count()
        spin(0.02)
        profiler.stop()
        n = profiler.report()["n_samples"]
        profiler.stop()  # idempotent; sample counts unchanged
        assert profiler.report()["n_samples"] == n
        assert not profiler.running

    def test_restart_accumulates(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.05)
        first = profiler.report()["n_samples"]
        with profiler:
            spin(0.05)
        assert profiler.report()["n_samples"] >= first

    def test_untraced_samples_flagged(self):
        # No ambient tracer: every sample lands in the untraced bucket
        # and the attributed fraction is honest about it.
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            spin(0.1)
        report = profiler.report()
        assert report["n_samples"] > 0
        assert report["phase_samples"] == {
            UNTRACED_PHASE: report["n_samples"]
        }
        assert report["attributed_fraction"] == 0.0

    def test_default_is_null_and_disabled(self):
        assert get_profiler() is NULL_PROFILER
        assert not get_profiler().enabled
        assert NULL_PROFILER.interval == 0.0
        # The null object swallows the whole surface without effect.
        NULL_PROFILER.start()
        NULL_PROFILER.merge_samples("w", "p", [(("f",), 1)])
        NULL_PROFILER.stop()
        assert NULL_PROFILER.report() == {}

    def test_use_profiler_scopes_ambient(self):
        profiler = SamplingProfiler(interval=0.01)
        with use_profiler(profiler):
            assert get_profiler() is profiler
            assert get_profiler().enabled
        assert get_profiler() is NULL_PROFILER

    def test_set_profiler_returns_previous(self):
        profiler = SamplingProfiler(interval=0.01)
        prev = set_profiler(profiler)
        try:
            assert get_profiler() is profiler
        finally:
            set_profiler(prev)
        assert get_profiler() is prev


class TestExports:
    def _merged_profiler(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.merge_samples(
            "worker-42", "parallel",
            [(("worker:main", "kernels:solve"), 3),
             (("worker:main", "kernels:stage"), 2)],
        )
        return profiler

    def test_worker_merge_rounds_trip_collapsed(self):
        profiler = self._merged_profiler()
        lines = dict(
            line.rsplit(" ", 1) for line in profiler.collapsed().splitlines()
        )
        assert lines["worker-42;parallel;worker:main;kernels:solve"] == "3"
        assert lines["worker-42;parallel;worker:main;kernels:stage"] == "2"
        assert profiler.phase_samples() == {"parallel": 5}
        assert profiler.attributed_fraction() == 1.0

    def test_worker_merge_rounds_trip_speedscope(self, tmp_path):
        profiler = self._merged_profiler()
        path = profiler.write_speedscope(tmp_path / "p.speedscope.json")
        doc = json.loads(path.read_text())
        assert doc["$schema"].endswith("file-format-schema.json")
        prof = {p["name"]: p for p in doc["profiles"]}["worker-42"]
        assert prof["type"] == "sampled"
        # 5 samples, each stack rooted at the phase frame.
        assert sum(prof["weights"]) == 5
        frames = [f["name"] for f in doc["shared"]["frames"]]
        for sample in prof["samples"]:
            assert frames[sample[0]] == "parallel"

    def test_collapsed_file_export(self, tmp_path):
        profiler = self._merged_profiler()
        path = profiler.write_collapsed(tmp_path / "p.collapsed")
        assert path.read_text() == profiler.collapsed() + "\n"

    def test_report_top_limits_stacks(self):
        profiler = self._merged_profiler()
        report = profiler.report(top=1)
        assert len(report["top_stacks"]) == 1
        assert report["top_stacks"][0]["count"] == 3


class TestWorkerSampler:
    def test_samples_only_between_begin_end(self):
        sampler = WorkerSampler(interval=0.001)
        try:
            spin(0.03)  # not armed: nothing may be captured
            assert sampler.drain() == []
            sampler.begin()
            spin(0.1)
            sampler.end()
            samples = sampler.drain()
            assert sum(count for _, count in samples) > 0
            # drain clears
            assert sampler.drain() == []
        finally:
            sampler.close()


class TestMemoryProfiler:
    def test_phase_deltas_and_report_shape(self):
        mem = MemoryProfiler()
        mem.start()
        with mem.phase("alloc"):
            block = np.ones(2_000_000)  # ~16 MB
        del block
        mem.stop()
        report = mem.report()
        assert report["baseline_rss_bytes"] > 0
        assert report["peak_rss_bytes"] >= report["baseline_rss_bytes"]
        phase = report["phases"]["alloc"]
        assert phase["count"] == 1
        if report["tracemalloc"]["available"]:
            assert phase["tracemalloc_delta_bytes"] > 10_000_000

    def test_tracemalloc_unavailable_degrades(self, monkeypatch):
        monkeypatch.setattr(memprof, "tracemalloc", None)
        mem = MemoryProfiler()
        mem.start()
        with mem.phase("alloc"):
            pass
        mem.stop()
        report = mem.report()
        assert report["tracemalloc"]["available"] is False
        assert report["tracemalloc"]["peak_bytes"] is None
        assert any("tracemalloc" in note for note in report["notes"])
        # The payload the degraded profiler feeds still validates.
        validate_profile_report(build_profile_report(memory=report))

    def test_observe_cycle_growth(self):
        mem = MemoryProfiler()
        mem.start()
        first = mem.observe_cycle()
        second = mem.observe_cycle()
        for stats in (first, second):
            assert set(stats) == {
                "rss_bytes", "rss_growth_bytes", "shm_live_bytes"
            }
        assert first["rss_bytes"] > 0

    def test_default_memory_rules_fire_on_sustained_growth(self):
        from repro.telemetry import AlertEngine

        engine = AlertEngine(default_memory_rules(
            growth_bytes=1000, sustained=2
        ))
        assert engine.evaluate(0, {"rss_growth_bytes": 5000}) == []
        fired = engine.evaluate(1, {"rss_growth_bytes": 5000})
        assert [a.rule for a in fired] == ["memory_runaway"]
        assert fired[0].severity == "critical"

    def test_rss_probes_positive(self):
        assert current_rss_bytes() > 0
        assert peak_rss_bytes() >= current_rss_bytes() * 0.5

    def test_publish_memory_gauges(self):
        metrics = MetricsRegistry()
        publish_memory_gauges(
            metrics, geometry_cache_bytes=123.0, tracemalloc_peak=456.0
        )
        snap = metrics.snapshot()["gauges"]
        assert snap["process.rss_bytes"] > 0
        assert snap["geometry.cache_bytes"] == 123.0
        assert snap["tracemalloc.peak_bytes"] == 456.0
        assert "shm.live_bytes" in snap


class TestSharedSegmentRegistry:
    def test_create_dispose_accounting(self):
        reg = SharedSegmentRegistry()
        reg.record_create("a", 100)
        reg.record_create("b", 200)
        assert reg.live_count() == 2
        assert reg.live_bytes() == 300
        reg.record_dispose("a")
        reg.record_dispose("b", via_gc=True)
        snap = reg.snapshot()
        assert snap["live_count"] == 0
        # Explicit and gc-driven disposal are disjoint books.
        assert snap["disposed_count"] == 1
        assert snap["disposed_bytes"] == 100
        assert snap["gc_reclaimed_count"] == 1
        assert snap["gc_reclaimed_bytes"] == 200

    def test_unknown_dispose_ignored(self):
        reg = SharedSegmentRegistry()
        reg.record_dispose("never-created")
        assert reg.snapshot()["disposed_count"] == 0

    def test_checkpoint_marks_progress(self):
        reg = SharedSegmentRegistry()
        created0, gc0 = reg.checkpoint()
        reg.record_create("a", 10)
        reg.record_dispose("a", via_gc=True)
        created1, gc1 = reg.checkpoint()
        assert (created1 - created0, gc1 - gc0) == (1, 1)

    def test_shared_ensemble_registers_and_unregisters(self):
        from repro.parallel.shared import SharedEnsemble

        reg = shared_segment_registry()
        before = set(reg.live_segments())
        shared = SharedEnsemble.from_array(np.ones((3, 8)))
        new = set(reg.live_segments()) - before
        assert len(new) == 1
        shared.dispose()
        assert set(reg.live_segments()) - before == set()

    def test_gc_reclaim_counts_as_leak_survivor(self):
        from repro.parallel.shared import SharedEnsemble

        reg = shared_segment_registry()
        _, gc_before = reg.checkpoint()
        shared = SharedEnsemble.from_array(np.ones((2, 4)))
        del shared
        gc.collect()
        _, gc_after = reg.checkpoint()
        assert gc_after - gc_before == 1
        # ...but nothing is live: the sentinel fixture stays green.


class TestFootprintJoin:
    def test_within_threshold(self):
        join = footprint_attribution(
            predicted_increment_bytes=1000.0,
            baseline_rss_bytes=100_000.0,
            measured_peak_rss_bytes=101_500.0,
        )
        assert join["predicted_peak_rss_bytes"] == 101_000.0
        assert abs(join["rel_error"]) < 0.15
        assert join["drift_flags"] == []

    def test_drift_flag_raised(self):
        join = footprint_attribution(
            predicted_increment_bytes=0.0,
            baseline_rss_bytes=50_000.0,
            measured_peak_rss_bytes=100_000.0,
        )
        assert len(join["drift_flags"]) == 1
        assert "peak_rss" in join["drift_flags"][0]

    def test_nothing_measured(self):
        join = footprint_attribution(
            predicted_increment_bytes=10.0,
            baseline_rss_bytes=10.0,
            measured_peak_rss_bytes=0.0,
        )
        assert join["rel_error"] is None
        assert "nothing measured" in join["drift_flags"][0]

    def test_predicted_footprint_components(self):
        from repro.costmodel import CostParams, predicted_footprint_bytes

        p = CostParams(
            n_x=24, n_y=12, n_members=16, h=8.0, xi=2, eta=1,
            a=0.0, b=0.0, c=0.0, theta=0.0,
        )
        parts = predicted_footprint_bytes(
            p, n_sdx=2, n_sdy=2, n_layers=1, n_cg=1,
            geometry_cache_bytes=512.0,
        )
        assert parts["ensemble_bytes"] == 2 * 24 * 12 * 8.0 * 16
        assert parts["geometry_cache_bytes"] == 512.0
        assert parts["total_bytes"] == pytest.approx(
            parts["ensemble_bytes"] + parts["staging_bytes"] + 512.0
        )


class TestProfileReport:
    def _full_payload(self):
        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001)
        mem = MemoryProfiler()
        mem.start()
        with use_tracer(tracer), profiler:
            with tracer.span("work", category="compute"):
                spin(0.05)
        mem.stop()
        footprint = footprint_attribution(
            1000.0, mem.report()["baseline_rss_bytes"],
            mem.report()["peak_rss_bytes"],
        )
        return build_profile_report(
            sampler=profiler.report(), memory=mem.report(),
            footprint=footprint, notes=["test"],
        )

    def test_round_trip_write(self, tmp_path):
        payload = self._full_payload()
        path = write_profile_report(payload, tmp_path / "profile.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == PROFILE_SCHEMA
        validate_profile_report(loaded)

    def test_validator_rejects_bad_payloads(self):
        wrong_schema = build_profile_report()
        wrong_schema["schema"] = "bogus/9"
        with pytest.raises(ValueError, match="schema"):
            validate_profile_report(wrong_schema)
        with pytest.raises(ValueError, match="missing key"):
            validate_profile_report({"schema": PROFILE_SCHEMA})
        payload = build_profile_report(sampler={"interval": 0.01})
        with pytest.raises(ValueError, match="sampler"):
            validate_profile_report(payload)
        payload = self._full_payload()
        payload["sampler"]["attributed_fraction"] = 1.5
        with pytest.raises(ValueError, match="attributed_fraction"):
            validate_profile_report(payload)

    def test_invalid_payload_never_hits_disk(self, tmp_path):
        target = tmp_path / "profile.json"
        with pytest.raises(ValueError):
            write_profile_report({"schema": PROFILE_SCHEMA}, target)
        assert not target.exists()

    def test_run_report_embeds_profile(self, tmp_path):
        from repro.telemetry import RunReport

        payload = self._full_payload()
        report = RunReport(
            kind="test", config={}, seeds={}, n_cycles=1, profile=payload
        )
        path = report.write(tmp_path / "run_report.json")
        loaded = json.loads(path.read_text())
        assert loaded["profile"]["schema"] == PROFILE_SCHEMA
        bad = RunReport(
            kind="test", config={}, seeds={}, n_cycles=1,
            profile={"schema": "bogus/9"},
        )
        with pytest.raises(ValueError, match="profile"):
            bad.write(tmp_path / "bad.json")


class TestWorkerIntegration:
    def test_process_fanout_merges_worker_tracks(self):
        """End to end: profiled process fan-out is bit-identical and
        produces worker-<pid> tracks in the exports."""
        from repro.core import (
            Decomposition, Grid, ObservationNetwork, radius_to_halo,
        )
        from repro.filters import PEnKF

        rng = np.random.default_rng(5)
        grid = Grid(n_x=16, n_y=8, dx_km=2.5, dy_km=5.0)
        xi, eta = radius_to_halo(6.0, grid.dx_km, grid.dy_km)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=xi, eta=eta)
        network = ObservationNetwork.random(
            grid, m=24, obs_error_std=0.2, rng=np.random.default_rng(1)
        )
        states = rng.standard_normal((grid.n, 12))
        y = network.observe(states[:, 0], rng=np.random.default_rng(2))

        serial = PEnKF(radius_km=6.0, inflation=1.05, ridge=1e-2)
        reference = serial.assimilate(
            decomp, states, network, y, rng=np.random.default_rng(3)
        )

        tracer = Tracer()
        profiler = SamplingProfiler(interval=0.001)
        filt = PEnKF(
            radius_km=6.0, inflation=1.05, ridge=1e-2,
            workers=2, strategy="process",
        )
        try:
            with use_tracer(tracer), use_profiler(profiler), profiler:
                profiled = filt.assimilate(
                    decomp, states, network, y, rng=np.random.default_rng(3)
                )
        finally:
            filt.close()

        assert np.array_equal(reference, profiled)
        report = profiler.report()
        worker_tracks = [
            t for t in report["tracks"] if t.startswith("worker-")
        ]
        if worker_tracks:  # tiny problems may finish between samples
            assert report["phase_samples"].get("parallel", 0) > 0
            assert any(
                line.startswith(f"{worker_tracks[0]};parallel;")
                for line in profiler.collapsed().splitlines()
            )
