"""Tests for Algorithms 1 and 2 (optimisation model solver + auto-tuner)."""

import pytest

from repro.costmodel import CostParams, t1
from repro.tuning import (
    autotune,
    economic_choice,
    feasible_c1_values,
    feasible_c2_values,
    read_inflation_from_metrics,
    read_inflation_from_schedule,
    solve_optimization_model,
)
from repro.tuning.optmodel import TuningChoice, _divisors


def params(**kw):
    defaults = dict(
        n_x=48, n_y=24, n_members=8, h=240.0, xi=2, eta=1,
        a=1e-5, b=1e-9, c=2e-4, theta=5e-9,
    )
    defaults.update(kw)
    return CostParams(**defaults)


class TestDivisors:
    def test_basic(self):
        assert _divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert _divisors(13) == (1, 13)

    def test_square(self):
        assert _divisors(36) == (1, 2, 3, 4, 6, 9, 12, 18, 36)

    def test_one(self):
        assert _divisors(1) == (1,)


class TestAlgorithm1:
    def test_budgets_respected(self):
        p = params()
        sol = solve_optimization_model(p, c1=8, c2=24)
        assert sol is not None
        assert sol.c1 == 8
        assert sol.c2 == 24

    def test_divisibility_of_solution(self):
        p = params()
        sol = solve_optimization_model(p, c1=8, c2=24)
        assert p.n_y % sol.n_sdy == 0
        assert p.n_x % sol.n_sdx == 0
        assert p.n_members % sol.n_cg == 0
        assert (p.n_y // sol.n_sdy) % sol.n_layers == 0

    def test_infeasible_returns_none(self):
        p = params()
        # c1 = 7 needs n_sdy*n_cg = 7 with n_sdy | 24 and n_cg | 8:
        # n_sdy in {1,7}, but 7 does not divide 24 and n_cg=7 not | 8.
        assert solve_optimization_model(p, c1=7, c2=24) is None

    def test_minimality_against_brute_force(self):
        p = params()
        c1, c2 = 12, 48
        sol = solve_optimization_model(p, c1, c2)
        # brute force over the whole constrained space
        best = None
        for n_sdy in range(1, c1 + 1):
            if c1 % n_sdy or c2 % n_sdy or p.n_y % n_sdy:
                continue
            n_cg = c1 // n_sdy
            n_sdx = c2 // n_sdy
            if p.n_x % n_sdx or p.n_members % n_cg:
                continue
            block_rows = p.n_y // n_sdy
            for L in range(1, block_rows + 1):
                if block_rows % L:
                    continue
                v = t1(p, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=L, n_cg=n_cg)
                if best is None or v < best:
                    best = v
        assert sol is not None and best is not None
        assert sol.t1 == pytest.approx(best)

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            solve_optimization_model(params(), c1=0, c2=4)


class TestFeasibleSets:
    def test_c2_values_all_realisable(self):
        p = params()
        for c2 in feasible_c2_values(p, n_p=100):
            assert any(
                c2 % sy == 0 and p.n_x % (c2 // sy) == 0
                for sy in _divisors(p.n_y)
            )

    def test_c2_values_bounded(self):
        p = params()
        assert all(v <= 50 for v in feasible_c2_values(p, n_p=50))

    def test_c1_values_sorted_and_bounded(self):
        p = params()
        vals = feasible_c1_values(p, c2=24, limit=20)
        assert vals == sorted(vals)
        assert all(v <= 20 for v in vals)


class TestEarningsRate:
    def mk(self, c1, t1v):
        return (c1, t1v, TuningChoice(n_sdx=1, n_sdy=1, n_layers=1, n_cg=c1, t1=t1v))

    def test_stops_at_first_small_gain(self):
        # Gains per extra processor: (10-5)/1=5, (5-4.9)/1=0.1
        frontier = [self.mk(1, 10.0), self.mk(2, 5.0), self.mk(3, 4.9)]
        choice = economic_choice(frontier, epsilon=1.0)
        assert choice.n_cg == 2  # stop before paying for the third

    def test_takes_last_when_all_gains_large(self):
        frontier = [self.mk(1, 10.0), self.mk(2, 5.0), self.mk(4, 1.0)]
        choice = economic_choice(frontier, epsilon=0.1)
        assert choice.n_cg == 4

    def test_single_entry(self):
        frontier = [self.mk(1, 10.0)]
        assert economic_choice(frontier, epsilon=1.0).n_cg == 1

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValueError):
            economic_choice([], epsilon=1.0)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            economic_choice([self.mk(1, 1.0)], epsilon=0.0)


class TestAlgorithm2:
    def test_fast_equals_exhaustive_small(self):
        """The divisor-restricted sweep matches the verbatim integer sweep."""
        p = params()
        fast = autotune(p, n_p=40, epsilon=1e-3)
        slow = autotune(p, n_p=40, epsilon=1e-3, exhaustive=True)
        assert fast is not None and slow is not None
        assert fast.t_total == pytest.approx(slow.t_total)
        assert fast.choice == slow.choice

    def test_respects_processor_budget(self):
        p = params()
        for n_p in (10, 30, 80):
            res = autotune(p, n_p=n_p, epsilon=1e-3)
            assert res is not None
            assert res.total_processors <= n_p

    def test_more_processors_never_slower(self):
        p = params()
        t_small = autotune(p, n_p=20, epsilon=1e-4).t_total
        t_large = autotune(p, n_p=100, epsilon=1e-4).t_total
        assert t_large <= t_small + 1e-12

    def test_epsilon_controls_io_spend(self):
        """A stingier (larger) epsilon never spends more I/O processors."""
        p = params()
        generous = autotune(p, n_p=60, epsilon=1e-6)
        stingy = autotune(p, n_p=60, epsilon=1e3)
        assert stingy.c1 <= generous.c1

    def test_frontier_is_strictly_improving(self):
        p = params()
        res = autotune(p, n_p=60, epsilon=1e-4)
        t1s = [t for _, t in res.frontier]
        assert all(t1s[i] > t1s[i + 1] for i in range(len(t1s) - 1))

    def test_infeasible_budget_returns_none(self):
        # n_p = 1 cannot host compute + I/O.
        assert autotune(params(), n_p=1, epsilon=1e-3) is None

    def test_choice_satisfies_all_divisibility(self):
        p = params()
        res = autotune(p, n_p=60, epsilon=1e-3)
        p.validate_choice(
            res.choice.n_sdx, res.choice.n_sdy, res.choice.n_layers, res.choice.n_cg
        )

    def test_scales_to_large_processor_counts(self):
        """The fast path must handle paper-scale budgets (12,000 ranks)."""
        p = params(n_x=3600, n_y=1800, n_members=120)
        res = autotune(p, n_p=12000, epsilon=1e-5)
        assert res is not None
        assert res.total_processors <= 12000
        assert res.c2 > 1000  # most processors go to compute


class TestFaultAwareAutotune:
    """Fault-aware Algorithm 2: a known chaos regime inflates the read
    term, which must shift the economic C1/C2 split and never produce a
    pick whose retry-inflated T1 exceeds the fault-free pick's envelope."""

    def small_machine_params(self):
        from repro.cluster.params import MachineSpec
        from repro.filters.base import PerfScenario

        return PerfScenario.small().cost_params(MachineSpec.small_cluster())

    def schedule(self, rate):
        from repro.faults import FaultSchedule

        return FaultSchedule(seed=1, disk_fault_rate=rate)

    def test_schedule_inflation_matches_closed_form(self):
        from repro.costmodel import expected_read_inflation
        from repro.faults import RetryPolicy

        faults = self.schedule(0.3)
        retry = RetryPolicy(max_retries=2)
        assert read_inflation_from_schedule(faults, retry) == pytest.approx(
            expected_read_inflation(0.3, max_retries=2)
        )

    def test_metrics_inflation_from_observed_retry_spend(self):
        snapshot = {
            "counters": {"io.members_read": 100.0, "fault.retries": 25.0}
        }
        assert read_inflation_from_metrics(snapshot) == pytest.approx(1.25)
        assert read_inflation_from_metrics({"counters": {}}) == 1.0
        # a bare counters dict (no wrapper) works too
        assert read_inflation_from_metrics(
            {"io.members_read": 10.0, "fault.retries": 5.0}
        ) == pytest.approx(1.5)

    def test_fault_rate_shifts_io_budget(self):
        """The acceptance scenario: a nonzero disk fault rate provably
        moves the economic C1/C2 split — reads cost more, so the tuner
        buys more I/O parallelism."""
        p = self.small_machine_params()
        clean = autotune(p, n_p=64, epsilon=1e-2)
        faulty = autotune(p, n_p=64, epsilon=1e-2, faults=self.schedule(0.4))
        assert clean is not None and faulty is not None
        assert faulty.c1 > clean.c1
        assert (faulty.c1, faulty.c2) != (clean.c1, clean.c2)

    def test_envelope_faulty_pick_never_worse_under_inflation(self):
        """Algorithm 2's optimality under the inflated objective: the
        fault-aware pick's retry-inflated T1 must not exceed the
        fault-free pick's T1 evaluated under the same inflation."""
        p = self.small_machine_params()
        for rate in (0.1, 0.25, 0.4):
            faults = self.schedule(rate)
            inflated = p.with_(
                read_inflation=read_inflation_from_schedule(faults)
            )
            clean = autotune(p, n_p=64, epsilon=1e-2)
            faulty = autotune(p, n_p=64, epsilon=1e-2, faults=faults)

            def t1_of(result):
                ch = result.choice
                return t1(
                    inflated, n_sdx=ch.n_sdx, n_sdy=ch.n_sdy,
                    n_layers=ch.n_layers, n_cg=ch.n_cg,
                )

            assert t1_of(faulty) <= t1_of(clean) + 1e-12

    def test_earnings_rate_still_binds_under_faults(self):
        """The ε stopping rule and the inflation compose: a stingier ε
        never spends more I/O processors at the same fault rate."""
        p = self.small_machine_params()
        faults = self.schedule(0.4)
        generous = autotune(p, n_p=64, epsilon=1e-6, faults=faults)
        stingy = autotune(p, n_p=64, epsilon=1e3, faults=faults)
        assert stingy.c1 <= generous.c1

    def test_zero_rate_schedule_is_a_noop(self):
        p = self.small_machine_params()
        clean = autotune(p, n_p=64, epsilon=1e-2)
        nofault = autotune(p, n_p=64, epsilon=1e-2, faults=self.schedule(0.0))
        assert nofault.choice == clean.choice
        assert nofault.t_total == pytest.approx(clean.t_total)

    def test_double_inflation_rejected(self):
        p = self.small_machine_params().with_(read_inflation=1.2)
        with pytest.raises(ValueError, match="not both"):
            autotune(p, n_p=64, epsilon=1e-2, faults=self.schedule(0.2))

    def test_preinflated_params_accepted(self):
        """read_inflation_from_metrics output threads through unchanged."""
        p = self.small_machine_params().with_(read_inflation=1.25)
        res = autotune(p, n_p=64, epsilon=1e-2)
        assert res is not None
