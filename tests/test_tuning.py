"""Tests for Algorithms 1 and 2 (optimisation model solver + auto-tuner)."""

import pytest

from repro.costmodel import CostParams, t1
from repro.tuning import (
    autotune,
    economic_choice,
    feasible_c1_values,
    feasible_c2_values,
    solve_optimization_model,
)
from repro.tuning.optmodel import TuningChoice, _divisors


def params(**kw):
    defaults = dict(
        n_x=48, n_y=24, n_members=8, h=240.0, xi=2, eta=1,
        a=1e-5, b=1e-9, c=2e-4, theta=5e-9,
    )
    defaults.update(kw)
    return CostParams(**defaults)


class TestDivisors:
    def test_basic(self):
        assert _divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_prime(self):
        assert _divisors(13) == (1, 13)

    def test_square(self):
        assert _divisors(36) == (1, 2, 3, 4, 6, 9, 12, 18, 36)

    def test_one(self):
        assert _divisors(1) == (1,)


class TestAlgorithm1:
    def test_budgets_respected(self):
        p = params()
        sol = solve_optimization_model(p, c1=8, c2=24)
        assert sol is not None
        assert sol.c1 == 8
        assert sol.c2 == 24

    def test_divisibility_of_solution(self):
        p = params()
        sol = solve_optimization_model(p, c1=8, c2=24)
        assert p.n_y % sol.n_sdy == 0
        assert p.n_x % sol.n_sdx == 0
        assert p.n_members % sol.n_cg == 0
        assert (p.n_y // sol.n_sdy) % sol.n_layers == 0

    def test_infeasible_returns_none(self):
        p = params()
        # c1 = 7 needs n_sdy*n_cg = 7 with n_sdy | 24 and n_cg | 8:
        # n_sdy in {1,7}, but 7 does not divide 24 and n_cg=7 not | 8.
        assert solve_optimization_model(p, c1=7, c2=24) is None

    def test_minimality_against_brute_force(self):
        p = params()
        c1, c2 = 12, 48
        sol = solve_optimization_model(p, c1, c2)
        # brute force over the whole constrained space
        best = None
        for n_sdy in range(1, c1 + 1):
            if c1 % n_sdy or c2 % n_sdy or p.n_y % n_sdy:
                continue
            n_cg = c1 // n_sdy
            n_sdx = c2 // n_sdy
            if p.n_x % n_sdx or p.n_members % n_cg:
                continue
            block_rows = p.n_y // n_sdy
            for L in range(1, block_rows + 1):
                if block_rows % L:
                    continue
                v = t1(p, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=L, n_cg=n_cg)
                if best is None or v < best:
                    best = v
        assert sol is not None and best is not None
        assert sol.t1 == pytest.approx(best)

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            solve_optimization_model(params(), c1=0, c2=4)


class TestFeasibleSets:
    def test_c2_values_all_realisable(self):
        p = params()
        for c2 in feasible_c2_values(p, n_p=100):
            assert any(
                c2 % sy == 0 and p.n_x % (c2 // sy) == 0
                for sy in _divisors(p.n_y)
            )

    def test_c2_values_bounded(self):
        p = params()
        assert all(v <= 50 for v in feasible_c2_values(p, n_p=50))

    def test_c1_values_sorted_and_bounded(self):
        p = params()
        vals = feasible_c1_values(p, c2=24, limit=20)
        assert vals == sorted(vals)
        assert all(v <= 20 for v in vals)


class TestEarningsRate:
    def mk(self, c1, t1v):
        return (c1, t1v, TuningChoice(n_sdx=1, n_sdy=1, n_layers=1, n_cg=c1, t1=t1v))

    def test_stops_at_first_small_gain(self):
        # Gains per extra processor: (10-5)/1=5, (5-4.9)/1=0.1
        frontier = [self.mk(1, 10.0), self.mk(2, 5.0), self.mk(3, 4.9)]
        choice = economic_choice(frontier, epsilon=1.0)
        assert choice.n_cg == 2  # stop before paying for the third

    def test_takes_last_when_all_gains_large(self):
        frontier = [self.mk(1, 10.0), self.mk(2, 5.0), self.mk(4, 1.0)]
        choice = economic_choice(frontier, epsilon=0.1)
        assert choice.n_cg == 4

    def test_single_entry(self):
        frontier = [self.mk(1, 10.0)]
        assert economic_choice(frontier, epsilon=1.0).n_cg == 1

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValueError):
            economic_choice([], epsilon=1.0)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            economic_choice([self.mk(1, 1.0)], epsilon=0.0)


class TestAlgorithm2:
    def test_fast_equals_exhaustive_small(self):
        """The divisor-restricted sweep matches the verbatim integer sweep."""
        p = params()
        fast = autotune(p, n_p=40, epsilon=1e-3)
        slow = autotune(p, n_p=40, epsilon=1e-3, exhaustive=True)
        assert fast is not None and slow is not None
        assert fast.t_total == pytest.approx(slow.t_total)
        assert fast.choice == slow.choice

    def test_respects_processor_budget(self):
        p = params()
        for n_p in (10, 30, 80):
            res = autotune(p, n_p=n_p, epsilon=1e-3)
            assert res is not None
            assert res.total_processors <= n_p

    def test_more_processors_never_slower(self):
        p = params()
        t_small = autotune(p, n_p=20, epsilon=1e-4).t_total
        t_large = autotune(p, n_p=100, epsilon=1e-4).t_total
        assert t_large <= t_small + 1e-12

    def test_epsilon_controls_io_spend(self):
        """A stingier (larger) epsilon never spends more I/O processors."""
        p = params()
        generous = autotune(p, n_p=60, epsilon=1e-6)
        stingy = autotune(p, n_p=60, epsilon=1e3)
        assert stingy.c1 <= generous.c1

    def test_frontier_is_strictly_improving(self):
        p = params()
        res = autotune(p, n_p=60, epsilon=1e-4)
        t1s = [t for _, t in res.frontier]
        assert all(t1s[i] > t1s[i + 1] for i in range(len(t1s) - 1))

    def test_infeasible_budget_returns_none(self):
        # n_p = 1 cannot host compute + I/O.
        assert autotune(params(), n_p=1, epsilon=1e-3) is None

    def test_choice_satisfies_all_divisibility(self):
        p = params()
        res = autotune(p, n_p=60, epsilon=1e-3)
        p.validate_choice(
            res.choice.n_sdx, res.choice.n_sdy, res.choice.n_layers, res.choice.n_cg
        )

    def test_scales_to_large_processor_counts(self):
        """The fast path must handle paper-scale budgets (12,000 ranks)."""
        p = params(n_x=3600, n_y=1800, n_members=120)
        res = autotune(p, n_p=12000, epsilon=1e-5)
        assert res is not None
        assert res.total_processors <= 12000
        assert res.c2 > 1000  # most processors go to compute
