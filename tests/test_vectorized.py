"""Tests for the vectorized batched-analysis strategy.

The load-bearing contract differs from the fan-out strategies: the
batched kernels route through different LAPACK drivers (batched LU vs
per-piece Cholesky) so the guarantee is *tolerance-checked equivalence*
— every analysed value matches the serial engine to ``rtol <= 1e-10``
(with an absolute floor of 1e-11 for near-zero entries; solve accuracy
is normwise) — for every filter kind, localization, chaos/degraded
combination and bucketing policy, including the edge geometry: pieces
with no observations, single-piece buckets, and ragged buckets that
exercise the pad-or-split policy.  On top sit the shape-bucketer's
padding exactness proof, auto-strategy selection, the ``vectorized.*``
telemetry, the per-kernel cost-model calibration, and the
forward/backward-compat round-trips of the payloads that grew
strategy/backend fields.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Decomposition, Grid, ObservationNetwork
from repro.core.analysis import (
    analysis_gain_form,
    analysis_gain_form_batched,
    analysis_precision_form,
    analysis_precision_form_batched,
)
from repro.core.backend import get_backend
from repro.core.cholesky import (
    modified_cholesky_inverse,
    modified_cholesky_inverse_batched,
)
from repro.core.etkf import analysis_etkf, analysis_etkf_batched
from repro.costmodel import (
    CostParams,
    PhaseObservation,
    fit_constants,
    kernel_comp_constant,
    t_comp,
)
from repro.faults import FaultSchedule
from repro.filters import LETKF, SEnKF
from repro.filters.distributed import DistributedEnKF
from repro.models import correlated_ensemble
from repro.parallel import (
    AnalysisExecutor,
    AnalysisPlan,
    GeometryCache,
    KIND_ENKF,
    KIND_ETKF,
    VectorizedPolicy,
    run_vectorized,
)
from repro.parallel.vectorized import _split_by_waste
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    append_history,
    read_history,
    use_metrics,
    use_tracer,
)
from repro.tuning import autotune

#: the equivalence contract (see module docstring)
RTOL, ATOL = 1e-10, 1e-11


def problem(n_x=16, n_y=8, n_members=10, m=40, seed=0):
    grid = Grid(n_x=n_x, n_y=n_y, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(seed)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, n_members, length_scale_km=4.0, rng=rng
    )
    net = ObservationNetwork.random(grid, m=m, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    return grid, truth, states, net, y


def make_plan(kind, n_sdx=4, n_sdy=4, xi=2, eta=2, m=40, radius=2.0,
              seed=0, n_x=16, n_y=8, n_members=10, cache=None):
    """An :class:`AnalysisPlan` over every sub-domain of a fresh problem."""
    grid, truth, states, net, y = problem(
        n_x=n_x, n_y=n_y, n_members=n_members, m=m, seed=seed
    )
    decomp = Decomposition(grid, n_sdx=n_sdx, n_sdy=n_sdy, xi=xi, eta=eta)
    rng = np.random.default_rng(seed + 1)
    if kind == KIND_ENKF:
        obs = y[:, None] + 0.3 * rng.standard_normal((net.m, n_members))
        params = {"radius_km": radius, "ridge": 1e-3, "sparse_solver": False}
    else:
        obs = y
        params = {"inflation": 1.03}
    return AnalysisPlan(
        kind=kind,
        pieces=list(decomp),
        states=states,
        obs=obs,
        out=np.zeros_like(states),
        network=net,
        params=params,
        cache=cache if cache is not None else GeometryCache(),
    )


def serial_reference(plan):
    """The serial engine's output for the same plan (fresh out array)."""
    ref_plan = AnalysisPlan(
        kind=plan.kind, pieces=plan.pieces, states=plan.states,
        obs=plan.obs, out=np.zeros_like(plan.out), network=plan.network,
        params=plan.params, cache=GeometryCache(),
    )
    with AnalysisExecutor(strategy="serial") as ex:
        ex.run(ref_plan)
    return ref_plan.out


# ---------------------------------------------------------------------------
# Batched kernels vs their per-piece references
# ---------------------------------------------------------------------------
class TestBatchedKernels:
    def _stack(self, n_batch=5, n=12, n_members=8, m=6, seed=0):
        rng = np.random.default_rng(seed)
        xb = rng.standard_normal((n_batch, n, n_members))
        h = rng.standard_normal((n_batch, m, n))
        r = 0.1 + rng.random((n_batch, m))
        ys = rng.standard_normal((n_batch, m, n_members))
        return xb, h, r, ys

    def test_gain_form_matches_per_piece(self):
        xb, h, r, ys = self._stack()
        out = analysis_gain_form_batched(xb, h, r, ys)
        for b in range(xb.shape[0]):
            ref = analysis_gain_form(xb[b], h[b], r[b], ys[b])
            assert np.allclose(out[b], ref, rtol=RTOL, atol=ATOL)

    def test_gain_form_explicit_b_matches(self):
        xb, h, r, ys = self._stack(seed=1)
        rng = np.random.default_rng(2)
        a = rng.standard_normal((xb.shape[0], xb.shape[1], xb.shape[1]))
        b_mats = a @ a.transpose(0, 2, 1) + 2 * np.eye(xb.shape[1])
        out = analysis_gain_form_batched(xb, h, r, ys, b_matrices=b_mats)
        for b in range(xb.shape[0]):
            ref = analysis_gain_form(xb[b], h[b], r[b], ys[b],
                                     b_matrix=b_mats[b])
            assert np.allclose(out[b], ref, rtol=RTOL, atol=ATOL)

    def test_precision_form_matches_per_piece(self):
        xb, h, r, ys = self._stack(seed=3)
        rng = np.random.default_rng(4)
        a = rng.standard_normal((xb.shape[0], xb.shape[1], xb.shape[1]))
        b_invs = a @ a.transpose(0, 2, 1) + 2 * np.eye(xb.shape[1])
        out = analysis_precision_form_batched(xb, h, r, ys, b_invs)
        for b in range(xb.shape[0]):
            ref = analysis_precision_form(xb[b], h[b], r[b], ys[b], b_invs[b])
            assert np.allclose(out[b], ref, rtol=RTOL, atol=ATOL)

    def test_etkf_matches_per_piece(self):
        xb, h, r, _ = self._stack(seed=5)
        y = np.random.default_rng(6).standard_normal(
            (xb.shape[0], h.shape[1])
        )
        out = analysis_etkf_batched(xb, h, r, y, inflation=1.04)
        for b in range(xb.shape[0]):
            ref = analysis_etkf(xb[b], h[b], r[b], y[b], inflation=1.04)
            assert np.allclose(out[b], ref, rtol=RTOL, atol=ATOL)

    def test_modified_cholesky_matches_per_piece(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        sd = next(iter(decomp))
        geo = GeometryCache().local_geometry(net, sd, radius_km=2.0)
        rng = np.random.default_rng(7)
        stack = rng.standard_normal((4, sd.exp_size, 8))
        out = modified_cholesky_inverse_batched(
            stack, geo.predecessors, ridge=1e-3
        )
        ix, iy = sd.expansion_coords
        for b in range(stack.shape[0]):
            ref = modified_cholesky_inverse(
                stack[b], grid, ix, iy, radius_km=2.0, ridge=1e-3,
                predecessors=geo.predecessors,
            )
            assert np.allclose(out[b], ref, rtol=RTOL, atol=ATOL)

    def test_padding_is_an_exact_noop(self):
        """A piece padded with zero-H/unit-R/masked-obs slots must produce
        the same analysis as the unpadded computation — the proof behind
        the pad-or-split bucketer."""
        xb, h, r, ys = self._stack(n_batch=1, m=4, seed=8)
        pad = 3
        h_p = np.concatenate([h, np.zeros((1, pad, h.shape[2]))], axis=1)
        r_p = np.concatenate([r, np.ones((1, pad))], axis=1)
        ys_p = np.concatenate(
            [ys, np.zeros((1, pad, ys.shape[2]))], axis=1
        )
        rng = np.random.default_rng(9)
        a = rng.standard_normal((1, xb.shape[1], xb.shape[1]))
        b_invs = a @ a.transpose(0, 2, 1) + 2 * np.eye(xb.shape[1])

        unpadded = analysis_precision_form_batched(xb, h, r, ys, b_invs)
        padded = analysis_precision_form_batched(xb, h_p, r_p, ys_p, b_invs)
        assert np.allclose(unpadded, padded, rtol=1e-12, atol=1e-13)

        y = rng.standard_normal((1, 4))
        y_p = np.concatenate([y, np.zeros((1, pad))], axis=1)
        etkf_unpadded = analysis_etkf_batched(xb, h, r, y, inflation=1.02)
        etkf_padded = analysis_etkf_batched(
            xb, h_p, r_p, y_p, inflation=1.02
        )
        assert np.allclose(etkf_unpadded, etkf_padded, rtol=1e-12, atol=1e-13)

    def test_shape_mismatch_raises(self):
        xb, h, r, ys = self._stack()
        with pytest.raises(ValueError):
            analysis_gain_form_batched(xb, h[:-1], r, ys)
        with pytest.raises(ValueError):
            analysis_gain_form_batched(xb, h, r[:, :-1], ys)


# ---------------------------------------------------------------------------
# Filter-level equivalence: every filter x localization x chaos combination
# ---------------------------------------------------------------------------
def _filter_cases():
    # At radius 3.5 the largest predecessor stencil (18) exceeds the
    # 10-member ensemble's degrees of freedom, so the per-variable Gram
    # solve is rank-deficient at the default ridge and ANY change in BLAS
    # reduction order diverges far beyond rounding — the tolerance
    # contract assumes a ridge that keeps the regression conditioned
    # (see docs/PERFORMANCE.md), hence ridge=1e-3 throughout.
    for radius in (2.0, 3.5):
        yield (
            f"enkf-dense-r{radius}",
            lambda ex, radius=radius: DistributedEnKF(
                radius_km=radius, inflation=1.02, ridge=1e-3, executor=ex
            ),
        )
        yield (
            f"enkf-sparse-r{radius}",
            lambda ex, radius=radius: DistributedEnKF(
                radius_km=radius, sparse_solver=True, ridge=1e-3, executor=ex
            ),
        )
        yield (
            f"senkf-L2-r{radius}",
            lambda ex, radius=radius: SEnKF(
                radius_km=radius, n_layers=2, inflation=1.02, ridge=1e-3,
                executor=ex,
            ),
        )
    yield "letkf", lambda ex: LETKF(inflation=1.03, executor=ex)


#: chaos knobs are inert for the vectorized strategy (no pool workers to
#: crash); equivalence must hold with them armed all the same.
_CHAOS = {
    "clean": None,
    "chaos": FaultSchedule(
        seed=5, worker_crash_rate=0.5, worker_hang_rate=0.2,
        worker_hang_seconds=0.01,
    ),
}


class TestFilterEquivalence:
    @pytest.mark.parametrize(
        "label,make_filter", list(_filter_cases()), ids=lambda c: c
        if isinstance(c, str) else "",
    )
    @pytest.mark.parametrize("chaos", sorted(_CHAOS))
    def test_vectorized_matches_serial(self, label, make_filter, chaos):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        ref = make_filter(None).assimilate(decomp, states, net, y, rng=5)
        with AnalysisExecutor(
            strategy="vectorized", faults=_CHAOS[chaos]
        ) as ex:
            out = make_filter(ex).assimilate(decomp, states, net, y, rng=5)
        assert np.allclose(ref, out, rtol=RTOL, atol=ATOL)

    def test_fanout_strategies_stay_bit_identical(self):
        """The vectorized layer must not perturb the existing contract."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        ref = DistributedEnKF(radius_km=2.0).assimilate(
            decomp, states, net, y, rng=7
        )
        for strategy in ("serial", "thread", "process"):
            with AnalysisExecutor(strategy=strategy, workers=2) as ex:
                out = DistributedEnKF(radius_km=2.0, executor=ex).assimilate(
                    decomp, states, net, y, rng=7
                )
            assert np.array_equal(ref, out), strategy

    def test_filter_strategy_kwarg(self):
        """Filters build (and own) a pinned-strategy executor."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
        ref = DistributedEnKF(radius_km=2.0).assimilate(
            decomp, states, net, y, rng=9
        )
        filt = DistributedEnKF(radius_km=2.0, strategy="vectorized")
        try:
            assert filt.executor.strategy == "vectorized"
            out = filt.assimilate(decomp, states, net, y, rng=9)
        finally:
            filt.close()
        assert filt.executor is None  # close() released the owned executor
        assert np.allclose(ref, out, rtol=RTOL, atol=ATOL)
        with pytest.raises(ValueError, match="either executor"):
            DistributedEnKF(
                radius_km=2.0, strategy="serial",
                executor=AnalysisExecutor(strategy="serial"),
            )


# ---------------------------------------------------------------------------
# Bucketing policy: empty pieces, single-piece buckets, pad-or-split
# ---------------------------------------------------------------------------
class TestBucketing:
    @pytest.mark.parametrize("kind", [KIND_ENKF, KIND_ETKF])
    def test_empty_obs_pieces_run_exact(self, kind):
        # 2 observations over 16 pieces: most pieces see nothing.
        plan = make_plan(kind, m=2, radius=1.5)
        ref = serial_reference(plan)
        stats = run_vectorized(plan)
        assert stats["empty_pieces"] > 0
        assert stats["empty_pieces"] + stats["batched_pieces"] == len(
            plan.pieces
        )
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("kind", [KIND_ENKF, KIND_ETKF])
    def test_zero_waste_policy_forbids_padding(self, kind):
        plan = make_plan(kind, m=40)
        ref = serial_reference(plan)
        stats = run_vectorized(plan, policy=VectorizedPolicy(max_pad_waste=0.0))
        assert stats["pad_slots"] == 0
        assert stats["pad_waste"] == 0.0
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)

    def test_always_pad_policy_minimises_buckets(self):
        plan = make_plan(KIND_ENKF, m=40)
        ref = serial_reference(plan)
        stats_pad = run_vectorized(
            plan, policy=VectorizedPolicy(max_pad_waste=1.0)
        )
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)

        plan2 = make_plan(KIND_ENKF, m=40)
        stats_split = run_vectorized(
            plan2, policy=VectorizedPolicy(max_pad_waste=0.0)
        )
        # Padding merges ragged shape-groups that splitting keeps apart.
        assert stats_pad["n_buckets"] <= stats_split["n_buckets"]
        assert stats_pad["pad_slots"] >= stats_split["pad_slots"]
        # The realised waste metric is recorded and sane.
        assert 0.0 <= stats_pad["pad_waste"] <= 1.0

    def test_single_piece_buckets(self):
        # A 2x1 split yields 2 structurally distinct pieces -> every
        # bucket holds exactly one piece; batching must still be exact.
        plan = make_plan(KIND_ENKF, n_sdx=2, n_sdy=1, m=30)
        ref = serial_reference(plan)
        stats = run_vectorized(plan)
        assert stats["n_buckets"] >= 1
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)

    def test_unknown_kind_raises(self):
        plan = make_plan(KIND_ENKF)
        plan.kind = "weird"
        with pytest.raises(ValueError, match="kind 'weird'"):
            run_vectorized(plan)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_pad_waste"):
            VectorizedPolicy(max_pad_waste=1.5)

    def test_split_by_waste_boundaries(self):
        class _Geo:
            def __init__(self, m):
                self.obs_positions = np.arange(m)

        def group(counts):
            return [(i, None, _Geo(m)) for i, m in enumerate(counts)]

        # Equal counts never split.
        assert len(_split_by_waste(group([10, 10, 10]), 0.0)) == 1
        # 1 then 10: re-padding to 10 wastes 9/20 = 0.45 of the slots.
        assert len(_split_by_waste(group([1, 10]), 0.25)) == 2
        assert len(_split_by_waste(group([1, 10]), 0.5)) == 1
        # Zero tolerance: every distinct count is its own batch.
        assert len(_split_by_waste(group([1, 2, 3]), 0.0)) == 3

    def test_stats_backend_name(self):
        plan = make_plan(KIND_ENKF)
        stats = run_vectorized(plan, backend=get_backend("numpy"))
        assert stats["backend"] == "numpy"


# ---------------------------------------------------------------------------
# Hypothesis: random piece shapes, batched == per-piece
# ---------------------------------------------------------------------------
class TestPropertyEquivalence:
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        kind=st.sampled_from([KIND_ENKF, KIND_ETKF]),
        n_sdx=st.sampled_from([2, 4]),
        n_sdy=st.sampled_from([2, 4]),
        cell_x=st.integers(min_value=3, max_value=5),
        cell_y=st.integers(min_value=2, max_value=4),
        halo=st.integers(min_value=0, max_value=2),
        m=st.integers(min_value=1, max_value=30),
        # Radii keep the predecessor stencil (<= 6 points) below the
        # ensemble's 7 degrees of freedom: outside that regime the local
        # regression is rank-deficient and equivalence between summation
        # orders is not defined (see docs/PERFORMANCE.md).
        radius=st.sampled_from([1.0, 1.8]),
        waste=st.sampled_from([0.0, 0.3, 1.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_shapes(self, kind, n_sdx, n_sdy, cell_x, cell_y,
                           halo, m, radius, waste, seed):
        plan = make_plan(
            kind,
            n_sdx=n_sdx, n_sdy=n_sdy, xi=halo, eta=halo, m=m,
            radius=radius, seed=seed,
            n_x=n_sdx * cell_x, n_y=n_sdy * cell_y, n_members=8,
        )
        ref = serial_reference(plan)
        stats = run_vectorized(
            plan, policy=VectorizedPolicy(max_pad_waste=waste)
        )
        assert stats["empty_pieces"] + stats["batched_pieces"] == len(
            plan.pieces
        )
        if waste == 0.0:
            assert stats["pad_slots"] == 0
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)


# ---------------------------------------------------------------------------
# Executor integration: auto-resolution, telemetry
# ---------------------------------------------------------------------------
class TestExecutorIntegration:
    def test_auto_selects_vectorized_for_many_small_pieces(self):
        plan = make_plan(KIND_ENKF, n_sdx=4, n_sdy=4)  # 16 small pieces
        ex = AnalysisExecutor(strategy="auto")
        assert ex.resolve(plan) == "vectorized"

    def test_auto_selects_vectorized_even_with_one_worker(self):
        # The batching win is core-count independent: the vectorized
        # check runs before the worker-availability check.
        plan = make_plan(KIND_ENKF, n_sdx=4, n_sdy=4)
        ex = AnalysisExecutor(strategy="auto", workers=1)
        assert ex.resolve(plan) == "vectorized"

    def test_auto_keeps_fanout_for_few_pieces(self):
        plan = make_plan(KIND_ENKF, n_sdx=2, n_sdy=2)  # 4 pieces < 16
        ex = AnalysisExecutor(strategy="auto", workers=1)
        assert ex.resolve(plan) != "vectorized"

    def test_auto_keeps_fanout_for_huge_pieces(self):
        # 16 pieces but each expansion far beyond the mean-points
        # ceiling: per-piece BLAS dominates, batching buys nothing.
        plan = make_plan(
            KIND_ENKF, n_sdx=4, n_sdy=4, n_x=128, n_y=128, xi=8, eta=8,
        )
        ex = AnalysisExecutor(strategy="auto")
        assert ex.resolve(plan) != "vectorized"

    def test_executor_runs_vectorized(self):
        plan = make_plan(KIND_ENKF)
        ref = serial_reference(plan)
        with AnalysisExecutor(strategy="vectorized") as ex:
            n = ex.run(plan)
        assert n == len(plan.pieces)
        assert np.allclose(plan.out, ref, rtol=RTOL, atol=ATOL)

    def test_backend_name_accepted(self):
        plan = make_plan(KIND_ENKF)
        with AnalysisExecutor(strategy="vectorized", backend="numpy") as ex:
            ex.run(plan)
        assert ex._resolve_backend().name == "numpy"

    def test_metrics_and_spans(self):
        plan = make_plan(KIND_ENKF)
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        with use_tracer(tracer), use_metrics(metrics):
            with AnalysisExecutor(strategy="vectorized") as ex:
                ex.run(plan)
        snap = metrics.snapshot()["counters"]
        assert snap["vectorized.buckets"] >= 1
        assert snap["vectorized.batched_pieces"] >= 1
        assert snap["vectorized.obs_slots"] >= snap["vectorized.pad_slots"]
        assert "vectorized.pad_waste" in metrics.snapshot()["gauges"]
        bucket_spans = [
            s for s in tracer.spans if s.name == "vectorized.bucket"
        ]
        assert bucket_spans
        assert all(s.attrs["n_batch"] >= 1 for s in bucket_spans)
        run_spans = [s for s in tracer.spans if s.name == "parallel.run"]
        assert run_spans and run_spans[0].attrs["strategy"] == "vectorized"

    def test_bucket_cache_hits_across_cycles(self):
        cache = GeometryCache()
        plan = make_plan(KIND_ENKF, cache=cache)
        run_vectorized(plan)
        entries_after_first = cache.stats["entries"]
        tracer = Tracer()
        plan.out[:] = 0.0  # cycle 2: same problem, fresh analysis
        with use_tracer(tracer):
            run_vectorized(plan)
        # Cycle 2 rebuilt nothing: same entry count, buckets all cached.
        assert cache.stats["entries"] == entries_after_first
        bucket_spans = [
            s for s in tracer.spans if s.name == "vectorized.bucket"
        ]
        assert bucket_spans and all(s.attrs["cached"] for s in bucket_spans)


# ---------------------------------------------------------------------------
# Cost model: per-kernel T_comp + autotune kernel choice
# ---------------------------------------------------------------------------
def _params(**kw):
    defaults = dict(
        n_x=48, n_y=24, n_members=8, h=240.0, xi=2, eta=1,
        a=1e-5, b=1e-9, c=2e-4, theta=5e-9,
    )
    defaults.update(kw)
    return CostParams(**defaults)


class TestCostModelKernels:
    def test_kernel_constant_resolution(self):
        p = _params(c_vectorized=5e-5)
        assert kernel_comp_constant(p, "fanout") == p.c
        assert kernel_comp_constant(p, "vectorized") == 5e-5
        with pytest.raises(ValueError, match="not calibrated"):
            kernel_comp_constant(_params(), "vectorized")
        with pytest.raises(ValueError, match="unknown analysis kernel"):
            kernel_comp_constant(p, "gpu")

    def test_t_comp_prices_the_selected_kernel(self):
        p = _params(c_vectorized=1e-5)
        fanout = t_comp(p, n_sdx=4, n_sdy=4, n_layers=2)
        vectorized = t_comp(p, n_sdx=4, n_sdy=4, n_layers=2,
                            kernel="vectorized")
        assert vectorized == pytest.approx(fanout * (1e-5 / p.c))

    def test_fit_constants_recovers_both_kernels(self):
        template = _params()
        unit = template.with_(a=1.0, b=1.0, c=1.0, theta=1.0)
        c_true, cv_true = 3e-4, 8e-5
        obs = []
        for cfg in ((4, 4, 3, 4), (4, 4, 5, 4), (4, 4, 9, 4)):
            n_sdx, n_sdy, n_layers, n_cg = cfg
            structural = t_comp(
                unit, n_sdx=n_sdx, n_sdy=n_sdy, n_layers=n_layers
            )
            for kernel, const in (("fanout", c_true),
                                  ("vectorized", cv_true)):
                obs.append(PhaseObservation(
                    n_sdx=n_sdx, n_sdy=n_sdy, n_layers=n_layers, n_cg=n_cg,
                    read_seconds=1e-3, comm_seconds=1e-4,
                    comp_seconds=const * structural, kernel=kernel,
                ))
        fit = fit_constants(obs, template)
        assert fit.params.c == pytest.approx(c_true)
        assert fit.params.c_vectorized == pytest.approx(cv_true)
        assert "comp" in fit.residuals
        assert "comp_vectorized" in fit.residuals
        assert fit.residuals["comp_vectorized"].rel_rms < 1e-12
        assert fit.summary()["constants"]["c_vectorized"] == pytest.approx(
            cv_true
        )

    def test_fit_constants_unknown_kernel_raises(self):
        obs = [PhaseObservation(
            n_sdx=4, n_sdy=4, n_layers=3, n_cg=4,
            read_seconds=1e-3, comm_seconds=1e-4, comp_seconds=1e-2,
            kernel="gpu",
        )]
        with pytest.raises(ValueError, match="unknown analysis kernel"):
            fit_constants(obs, _params())

    def test_uncalibrated_kernel_untouched_by_fit(self):
        obs = [PhaseObservation(
            n_sdx=4, n_sdy=4, n_layers=3, n_cg=4,
            read_seconds=1e-3, comm_seconds=1e-4, comp_seconds=1e-2,
        )]
        fit = fit_constants(obs, _params())
        assert fit.params.c_vectorized is None
        assert "c_vectorized" not in fit.summary()["constants"]


class TestAutotuneKernels:
    def test_auto_picks_the_cheaper_kernel(self):
        p = _params(c_vectorized=2e-5)  # 10x cheaper than fanout's c
        fanout_only = autotune(p, n_p=40, epsilon=1e-3)
        both = autotune(p, n_p=40, epsilon=1e-3, kernels="auto")
        assert fanout_only.kernel == "fanout"
        assert both.kernel == "vectorized"
        assert both.t_total < fanout_only.t_total

    def test_auto_without_calibration_sticks_to_fanout(self):
        result = autotune(_params(), n_p=40, epsilon=1e-3, kernels="auto")
        assert result.kernel == "fanout"

    def test_explicit_uncalibrated_kernel_raises(self):
        with pytest.raises(ValueError, match="not calibrated"):
            autotune(_params(), n_p=40, epsilon=1e-3, kernels="vectorized")

    def test_expensive_vectorized_loses(self):
        p = _params(c_vectorized=5e-3)  # far costlier than fanout
        result = autotune(p, n_p=40, epsilon=1e-3, kernels="auto")
        assert result.kernel == "fanout"


# ---------------------------------------------------------------------------
# Forward/backward compat: payloads that grew strategy/backend fields
# ---------------------------------------------------------------------------
class TestPayloadCompat:
    def test_fault_schedule_ignores_engine_metadata(self):
        fs = FaultSchedule(seed=3, disk_fault_rate=0.1)
        data = fs.to_dict()
        data["strategy"] = "vectorized"
        data["backend"] = "numpy"
        assert FaultSchedule.from_dict(data) == fs
        # Round-trip the other way: serialized new-style, rebuilt, equal.
        assert FaultSchedule.from_dict(
            FaultSchedule.from_dict(data).to_dict()
        ) == fs

    def test_fault_schedule_still_rejects_unknown_fault_fields(self):
        data = FaultSchedule(seed=3).to_dict()
        data["quantum_fault_rate"] = 0.5
        with pytest.raises(ValueError, match="unknown FaultSchedule"):
            FaultSchedule.from_dict(data)

    def test_bench_history_roundtrips_strategy_context(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(
            path, "parallel",
            {"vectorized_warm_seconds": 0.1, "serial_warm_seconds": 0.3},
            context={
                "backend": "numpy", "strategy": "vectorized",
                "speedup_asserted": True, "cpu_count": 1,
            },
        )
        (entry,) = read_history(path)
        assert entry.context["backend"] == "numpy"
        assert entry.context["speedup_asserted"] is True
        assert entry.values["vectorized_warm_seconds"] == 0.1

    def test_bench_history_reader_tolerates_old_and_odd_lines(self, tmp_path):
        """Old entries without the new fields and newer entries carrying
        extra top-level keys must both read back without KeyError."""
        path = tmp_path / "hist.jsonl"
        old_line = {
            "schema": "senkf-bench-history/1", "bench": "parallel",
            "timestamp": 1.0,
            "values": {"serial_warm_seconds": 0.5},
            "context": {},
        }
        new_line = {
            "schema": "senkf-bench-history/1", "bench": "parallel",
            "timestamp": 2.0,
            "values": {
                "serial_warm_seconds": 0.4,
                "backend": "numpy",  # non-numeric: dropped, not fatal
            },
            "context": {"strategy": "vectorized"},
            "strategy": "vectorized",  # unknown top-level key: ignored
        }
        path.write_text(
            json.dumps(old_line) + "\n" + json.dumps(new_line) + "\n"
        )
        entries = read_history(path, bench="parallel")
        assert len(entries) == 2
        assert entries[0].context == {}
        assert entries[1].values == {"serial_warm_seconds": 0.4}
        assert entries[1].context["strategy"] == "vectorized"
