"""Tests for the synthetic geophysics substrate."""

import numpy as np
import pytest

from repro.core import (
    Grid,
    ObservationNetwork,
    analysis_gain_form,
    inflate,
    perturb_observations,
)
from repro.models import (
    AdvectionDiffusionModel,
    Lorenz96,
    TwinExperiment,
    correlated_ensemble,
    gaussian_random_field,
)


class TestGaussianRandomField:
    def grid(self):
        return Grid(n_x=64, n_y=32, dx_km=1.0, dy_km=1.0)

    def test_shape_and_std(self):
        g = self.grid()
        f = gaussian_random_field(g, length_scale_km=5.0, std=2.0, rng=0)
        assert f.shape == (g.n,)
        assert f.std() == pytest.approx(2.0, rel=1e-6)

    def test_reproducible(self):
        g = self.grid()
        a = gaussian_random_field(g, 5.0, rng=42)
        b = gaussian_random_field(g, 5.0, rng=42)
        assert np.array_equal(a, b)

    def test_neighbouring_points_correlated(self):
        g = self.grid()
        rng = np.random.default_rng(1)
        corr_short = []
        for _ in range(30):
            f = g.as_field(gaussian_random_field(g, 8.0, rng=rng))
            corr_short.append(np.mean(f[:, :-1] * f[:, 1:]))
        # Adjacent-point correlation should be high for ℓ = 8 cells.
        assert np.mean(corr_short) > 0.7

    def test_long_scale_smoother_than_short(self):
        g = self.grid()
        rng = np.random.default_rng(2)

        def roughness(length):
            total = 0.0
            for _ in range(10):
                f = g.as_field(gaussian_random_field(g, length, rng=rng))
                total += np.mean(np.diff(f, axis=1) ** 2)
            return total

        assert roughness(10.0) < roughness(1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gaussian_random_field(self.grid(), length_scale_km=0.0)
        with pytest.raises(ValueError):
            gaussian_random_field(self.grid(), 5.0, std=-1.0)

    def test_correlated_ensemble_shape_and_mean(self):
        g = self.grid()
        mean = np.full(g.n, 3.0)
        ens = correlated_ensemble(g, n_members=6, length_scale_km=5.0,
                                  mean=mean, rng=3)
        assert ens.shape == (g.n, 6)
        assert ens.mean() == pytest.approx(3.0, abs=0.3)

    def test_correlated_ensemble_members_independent(self):
        g = self.grid()
        ens = correlated_ensemble(g, n_members=2, length_scale_km=3.0, rng=4)
        c = np.corrcoef(ens[:, 0], ens[:, 1])[0, 1]
        assert abs(c) < 0.3

    def test_correlated_ensemble_bad_mean_shape(self):
        with pytest.raises(ValueError):
            correlated_ensemble(self.grid(), 2, 5.0, mean=np.zeros(3))


class TestAdvectionDiffusion:
    def grid(self):
        return Grid(n_x=32, n_y=16)

    def test_conserves_mass_periodic_noflux(self):
        g = self.grid()
        model = AdvectionDiffusionModel(g, u_max=1.0, kappa=0.05, dt=0.2)
        state = gaussian_random_field(g, 4.0, rng=0)
        out = model.step(state, n_steps=50)
        assert out.sum() == pytest.approx(state.sum(), rel=1e-9)

    def test_diffusion_reduces_variance(self):
        g = self.grid()
        model = AdvectionDiffusionModel(g, u_max=0.5, kappa=0.1, dt=0.2)
        state = gaussian_random_field(g, 2.0, rng=1)
        out = model.step(state, n_steps=100)
        assert out.var() < state.var()

    def test_pure_advection_translates_tracer(self):
        g = Grid(n_x=32, n_y=3)
        model = AdvectionDiffusionModel(g, u_max=1.0, kappa=0.0, dt=1.0)
        field = np.zeros(g.shape)
        field[1, 5] = 1.0  # mid row: u = u_max * sin(pi/2) = 1
        out = g.as_field(model.step(g.as_state(field), n_steps=3))
        # With CFL exactly 1 the upwind scheme is exact translation.
        assert out[1, 8] == pytest.approx(1.0)
        assert out[1, 5] == pytest.approx(0.0)

    def test_jet_zero_at_poles(self):
        model = AdvectionDiffusionModel(self.grid())
        assert model.u[0] == pytest.approx(0.0)
        assert model.u[-1] == pytest.approx(0.0, abs=1e-12)

    def test_cfl_violation_rejected(self):
        with pytest.raises(ValueError):
            AdvectionDiffusionModel(self.grid(), u_max=2.0, dt=1.0)

    def test_diffusion_limit_rejected(self):
        with pytest.raises(ValueError):
            AdvectionDiffusionModel(self.grid(), kappa=2.0, dt=1.0)

    def test_step_ensemble_matches_per_member(self):
        g = self.grid()
        model = AdvectionDiffusionModel(g)
        ens = correlated_ensemble(g, 3, 4.0, rng=5)
        out = model.step_ensemble(ens, n_steps=4)
        for k in range(3):
            assert np.allclose(out[:, k], model.step(ens[:, k], 4))

    def test_wrong_shape_rejected(self):
        model = AdvectionDiffusionModel(self.grid())
        with pytest.raises(ValueError):
            model.step(np.zeros(10))


class TestLorenz96:
    def test_dimension_check(self):
        with pytest.raises(ValueError):
            Lorenz96(n=3)

    def test_fixed_point_of_uniform_forcing(self):
        """x_i = F for all i is an equilibrium."""
        model = Lorenz96(n=8, forcing=8.0)
        x = 8.0 * np.ones(8)
        assert np.allclose(model.tendency(x), 0.0)

    def test_chaos_divergence(self):
        """Nearby trajectories separate (positive Lyapunov exponent)."""
        model = Lorenz96(n=40)
        x0 = model.spun_up_state(rng=0)
        x1 = x0.copy()
        x1[0] += 1e-6
        a, b = x0, x1
        a = model.step(a, 200)
        b = model.step(b, 200)
        assert np.linalg.norm(a - b) > 1e-3

    def test_bounded_trajectory(self):
        model = Lorenz96(n=40)
        x = model.spun_up_state(rng=1)
        x = model.step(x, 500)
        assert np.all(np.abs(x) < 30)

    def test_wrong_shape(self):
        model = Lorenz96(n=8)
        with pytest.raises(ValueError):
            model.step(np.zeros(5))

    def test_step_ensemble(self):
        model = Lorenz96(n=8)
        ens = np.random.default_rng(2).normal(8, 1, size=(8, 3))
        out = model.step_ensemble(ens, 5)
        assert out.shape == (8, 3)


class TestTwinExperiment:
    def test_lorenz96_enkf_tracks_truth(self):
        """End-to-end: a global stochastic EnKF beats the free run on L96."""
        model = Lorenz96(n=40, dt=0.05)
        # Observation grid trick: L96 is 1-D; embed as (n_x=40, n_y=1).
        grid = Grid(n_x=40, n_y=1)
        network = ObservationNetwork.regular(grid, every_x=2, every_y=1,
                                             obs_error_std=1.0)
        rng = np.random.default_rng(7)
        truth0 = model.spun_up_state(rng=rng)
        ens0 = truth0[:, None] + rng.normal(0, 3.0, size=(40, 24))

        def assimilate(states, y, cycle_rng):
            states = inflate(states, 1.05)
            ys = perturb_observations(y, 1.0, states.shape[1], rng=cycle_rng)
            r_diag = np.full(network.m, 1.0)
            return analysis_gain_form(states, network.operator, r_diag, ys)

        twin = TwinExperiment(model, network, assimilate, steps_per_cycle=2)
        result = twin.run(truth0, ens0, n_cycles=40)

        assert result.n_cycles == 40
        # The filter must beat both the background and the free run.
        assert result.mean_analysis_rmse(skip=10) < result.mean_background_rmse(skip=10)
        assert result.mean_analysis_rmse(skip=10) < 0.5 * np.mean(
            result.free_rmse[10:]
        )
        # And stay locked on (analysis error well below climatology ~3.6).
        assert result.mean_analysis_rmse(skip=20) < 1.5

    def test_result_validation(self):
        from repro.models import TwinResult

        r = TwinResult()
        with pytest.raises(ValueError):
            r.mean_analysis_rmse()

    def test_bad_ensemble_shape(self):
        model = Lorenz96(n=8)
        grid = Grid(n_x=8, n_y=1)
        network = ObservationNetwork.regular(grid, 1, 1)
        twin = TwinExperiment(model, network, lambda s, y, r: s)
        with pytest.raises(ValueError):
            twin.run(np.zeros(8), np.zeros((5, 3)), n_cycles=1)
