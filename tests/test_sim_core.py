"""Tests for the DES kernel: events, timeouts, processes, conditions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(3.5)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [3.5]


def test_timeout_value_passed_through():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for _ in range(3):
            yield env.timeout(2.0)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [2.0, 4.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 0.5))
    env.run()
    assert order == [("b", 0.5), ("a", 1.0)]


def test_same_time_ties_broken_by_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ["first", "second", "third"]:
        env.process(proc(env, name))
    env.run()
    assert order == ["first", "second", "third"]


def test_process_return_value():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return 42

    def outer(env, out):
        result = yield env.process(inner(env))
        out.append(result)

    out = []
    env.process(outer(env, out))
    env.run()
    assert out == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_yield_already_processed_event():
    env = Environment()
    results = []

    def early(env, ev):
        yield env.timeout(1.0)
        ev.succeed("early-value")

    def late(env, ev):
        yield env.timeout(5.0)
        value = yield ev
        results.append((env.now, value))

    ev = env.event()
    env.process(early(env, ev))
    env.process(late(env, ev))
    env.run()
    assert results == [(5.0, "early-value")]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failure_propagates_into_waiting_process():
    env = Environment()
    caught = []

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(failer(env, ev))
    env.process(waiter(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_surfaces_from_run():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(proc(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_failed_subprocess_propagates_to_parent():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1.0)
        raise KeyError("child-fail")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            caught.append(env.now)

    env.process(parent(env))
    env.run()
    assert caught == [1.0]


def test_yield_non_event_fails_process():
    env = Environment()

    def proc(env):
        yield 123  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(env, target):
        yield env.timeout(2.0)
        target.interrupt(cause="preempt")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [(2.0, "preempt")]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(0.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_all_of_waits_for_every_event():
    env = Environment()
    done = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(3.0, value="b")
        results = yield AllOf(env, [t1, t2])
        done.append((env.now, sorted(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(3.0, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    done = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(3.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        done.append((env.now, list(results.values())))

    env.process(proc(env))
    env.run()
    assert done == [(1.0, ["fast"])]


def test_all_of_empty_succeeds_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_env_helper_methods_match_classes():
    env = Environment()
    assert isinstance(env.all_of([env.timeout(1)]), AllOf)
    assert isinstance(env.any_of([env.timeout(1)]), AnyOf)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(4.0)
    env.timeout(2.0)
    assert env.peek() == 2.0


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_event_with_drained_queue_raises():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError, match="drained"):
        env.run(until=ev)


def test_zero_delay_timeout_runs_at_current_time():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(0.0)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [0.0]


def test_massive_fanout_determinism():
    """1000 processes finishing at identical times keep creation order."""
    env = Environment()
    order = []

    def proc(env, i):
        yield env.timeout(1.0)
        order.append(i)

    for i in range(1000):
        env.process(proc(env, i))
    env.run()
    assert order == list(range(1000))
