"""Tests for the filters' inline (real-numerics) execution paths."""

import numpy as np
import pytest

from repro.core import Decomposition, Grid, ObservationNetwork
from repro.filters import LEnKF, PEnKF, SEnKF, SerialEnKF
from repro.models import correlated_ensemble


def problem(n_x=16, n_y=8, n_members=12, m=40, seed=0):
    grid = Grid(n_x=n_x, n_y=n_y, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(seed)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, n_members, length_scale_km=4.0, rng=rng
    )
    net = ObservationNetwork.random(grid, m=m, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    return grid, truth, states, net, y


class TestSerialEnKF:
    def test_reduces_error(self):
        grid, truth, states, net, y = problem()
        f = SerialEnKF(net)
        xa = f.assimilate(states, y, rng=1)
        err_b = np.linalg.norm(states.mean(axis=1) - truth)
        err_a = np.linalg.norm(xa.mean(axis=1) - truth)
        assert err_a < err_b

    def test_tapered_version_runs(self):
        grid, truth, states, net, y = problem()
        f = SerialEnKF(net, taper_support_km=6.0)
        xa = f.assimilate(states, y, rng=1)
        assert xa.shape == states.shape
        assert np.all(np.isfinite(xa))

    def test_inflation_increases_spread_pre_analysis(self):
        grid, truth, states, net, y = problem()
        plain = SerialEnKF(net, inflation=1.0).assimilate(states, y, rng=2)
        inflated = SerialEnKF(net, inflation=1.5).assimilate(states, y, rng=2)
        assert not np.allclose(plain, inflated)

    def test_rejects_1d(self):
        grid, truth, states, net, y = problem()
        with pytest.raises(ValueError):
            SerialEnKF(net).assimilate(states[:, 0], y)

    def test_invalid_inflation(self):
        grid, *_ , net, y = (*problem()[:3], *problem()[3:])
        with pytest.raises(ValueError):
            SerialEnKF(net, inflation=0.0)


class TestDistributedFilters:
    def test_penkf_reduces_error_at_observed_points(self):
        grid, truth, states, net, y = problem(m=60)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=3, eta=3)
        f = PEnKF(radius_km=2.0)
        xa = f.assimilate(decomp, states, net, y, rng=3)
        obs = net.flat_locations
        err_b = np.linalg.norm(states.mean(axis=1)[obs] - truth[obs])
        err_a = np.linalg.norm(xa.mean(axis=1)[obs] - truth[obs])
        assert err_a < err_b

    def test_lenkf_penkf_identical_numerics(self):
        """The baselines differ only in data movement, not mathematics."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        xa_l = LEnKF(radius_km=2.0).assimilate(decomp, states, net, y, rng=4)
        xa_p = PEnKF(radius_km=2.0).assimilate(decomp, states, net, y, rng=4)
        assert np.allclose(xa_l, xa_p)

    def test_senkf_single_layer_equals_penkf(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        xa_s = SEnKF(radius_km=2.0, n_layers=1).assimilate(
            decomp, states, net, y, rng=5
        )
        xa_p = PEnKF(radius_km=2.0).assimilate(decomp, states, net, y, rng=5)
        assert np.allclose(xa_s, xa_p)

    def test_senkf_layering_exact_for_diagonal_precision(self):
        """With radius < spacing the update decouples pointwise, so the
        multi-stage split cannot change the answer."""
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        one = SEnKF(radius_km=0.5, n_layers=1).assimilate(
            decomp, states, net, y, rng=6
        )
        four = SEnKF(radius_km=0.5, n_layers=4).assimilate(
            decomp, states, net, y, rng=6
        )
        assert np.allclose(one, four, atol=1e-10)

    def test_senkf_layering_statistically_consistent(self):
        """With a real radius the layered estimator differs near layer
        boundaries but increments must stay strongly correlated."""
        grid, truth, states, net, y = problem(m=60)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=3, eta=3)
        one = SEnKF(radius_km=2.0, n_layers=1).assimilate(
            decomp, states, net, y, rng=7
        )
        four = SEnKF(radius_km=2.0, n_layers=4).assimilate(
            decomp, states, net, y, rng=7
        )
        inc1 = (one - states).ravel()
        inc4 = (four - states).ravel()
        corr = np.corrcoef(inc1, inc4)[0, 1]
        assert corr > 0.85

    def test_layer_divisibility_enforced(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        with pytest.raises(ValueError):
            SEnKF(radius_km=2.0, n_layers=3).assimilate(
                decomp, states, net, y, rng=8
            )

    def test_shape_mismatch_rejected(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        with pytest.raises(ValueError):
            PEnKF(radius_km=2.0).assimilate(decomp, states[:10], net, y)

    def test_identical_seeds_identical_results(self):
        grid, truth, states, net, y = problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        f = PEnKF(radius_km=2.0)
        a = f.assimilate(decomp, states, net, y, rng=9)
        b = f.assimilate(decomp, states, net, y, rng=9)
        assert np.array_equal(a, b)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            PEnKF(radius_km=0.0)


class TestSparseSolverFilters:
    def test_penkf_sparse_solver_matches_dense(self):
        grid, truth, states, net, y = problem(m=40)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=3, eta=3)
        dense = PEnKF(radius_km=2.0).assimilate(decomp, states, net, y, rng=5)
        sparse = PEnKF(radius_km=2.0, sparse_solver=True).assimilate(
            decomp, states, net, y, rng=5
        )
        assert np.allclose(dense, sparse, atol=1e-8)

    def test_senkf_sparse_solver_matches_dense(self):
        grid, truth, states, net, y = problem(m=40)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=2)
        dense = SEnKF(radius_km=2.0, n_layers=2).assimilate(
            decomp, states, net, y, rng=6
        )
        sparse = SEnKF(radius_km=2.0, n_layers=2, sparse_solver=True).assimilate(
            decomp, states, net, y, rng=6
        )
        assert np.allclose(dense, sparse, atol=1e-8)
