"""Tests for SimReport accounting and the scorecard."""

import pytest

from repro.experiments.scorecard import format_scorecard
from repro.filters.base import SimReport
from repro.sim import Timeline
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


def make_report():
    tl = Timeline()
    # two compute ranks
    tl.add(0, PHASE_WAIT, 0.0, 1.0)
    tl.add(0, PHASE_COMPUTE, 1.0, 5.0)
    tl.add(1, PHASE_WAIT, 0.0, 2.0)
    tl.add(1, PHASE_COMPUTE, 2.0, 5.0)
    # one io rank
    tl.add(2, PHASE_READ, 0.0, 2.0)
    tl.add(2, PHASE_COMM, 2.0, 3.0)
    return SimReport(
        filter_name="test",
        timeline=tl,
        total_time=5.0,
        compute_ranks=[0, 1],
        io_ranks=[2],
        n_sdx=2,
        n_sdy=1,
        n_layers=2,
        n_cg=1,
    )


class TestSimReport:
    def test_n_processors(self):
        assert make_report().n_processors == 3

    def test_mean_phase_times_compute_side(self):
        means = make_report().mean_phase_times("compute")
        assert means[PHASE_WAIT] == pytest.approx(1.5)
        assert means[PHASE_COMPUTE] == pytest.approx(3.5)

    def test_mean_phase_times_io_side(self):
        means = make_report().mean_phase_times("io")
        assert means[PHASE_READ] == 2.0
        assert means[PHASE_COMM] == 1.0

    def test_mean_phase_times_empty_side(self):
        report = make_report()
        report.io_ranks = []
        assert report.mean_phase_times("io") == {}

    def test_phase_fraction(self):
        report = make_report()
        assert report.phase_fraction(PHASE_COMPUTE, "compute") == pytest.approx(
            3.5 / 5.0
        )

    def test_io_fraction_counts_wait(self):
        # compute side: wait 1.5 of 5.0 accounted time
        assert make_report().io_fraction() == pytest.approx(1.5 / 5.0)

    def test_overlap_fraction(self):
        report = make_report()
        # compute busy union [1,5]; hidden = io read [0,2] + comm [2,3]
        # + compute-side waits [0,1],[0,2] => union [0,3]; intersect [1,3]=2
        assert report.overlap_fraction() == pytest.approx(2.0 / 5.0)

    def test_overlap_zero_when_no_time(self):
        report = make_report()
        report.total_time = 0.0
        assert report.overlap_fraction() == 0.0

    def test_summary_keys(self):
        summary = make_report().summary()
        for key in ("total_time", "n_processors", "io_fraction",
                    "overlap_fraction", "compute_read", "io_comm"):
            assert key in summary
        assert summary["total_time"] == 5.0


class TestScorecardFormatting:
    def test_format_scorecard_table(self):
        rows = [
            {
                "figure": "fig01",
                "checks_passed": 3,
                "checks_total": 3,
                "outcome": "PASS",
                "claim": "io share grows",
            },
            {
                "figure": "fig13",
                "checks_passed": 4,
                "checks_total": 5,
                "outcome": "FAIL",
                "claim": "x" * 80,
            },
        ]
        text = format_scorecard(rows)
        assert "fig01" in text and "3/3" in text
        assert "FAIL" in text
        assert "figures reproduced: 1/2" in text
        assert "..." in text  # long claim truncated
