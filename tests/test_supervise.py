"""Self-healing parallel analysis: supervision, retry, supervised campaigns.

The contract under test, end to end: *no matter which pool workers die
or wedge, and no matter how often the campaign process itself crashes, a
supervised run completes with results bit-identical to the serial
reference*.  Worker faults here are real — injected pool workers call
``os._exit`` / ``time.sleep`` — so the tests exercise the actual
``BrokenProcessPool`` detection, deadline expiry, pool respawn, piece
retry and serial-fallback machinery, not simulations of it.
"""

import json
import threading

import numpy as np
import pytest

from repro.checkpoint import CampaignRunner, SimulatedCrash
from repro.core import Decomposition, Grid, ObservationNetwork
from repro.faults import FaultSchedule, RetryPolicy
from repro.filters.distributed import DistributedEnKF
from repro.models import correlated_ensemble
from repro.parallel import (
    AnalysisExecutor,
    DeadlinePolicy,
    SupervisionPolicy,
    piece_seconds_from_cost_model,
)
from repro.parallel import executor as executor_mod
from repro.telemetry import RunReport, get_metrics, validate_run_report

N_PIECES = 8  # 4x2 decomposition below

#: a retry policy with near-zero wall-clock backoff, so recovery-path
#: tests don't spend their budget sleeping
FAST_RETRY = RetryPolicy(max_retries=1, base_delay=1e-4, max_delay=1e-3)


@pytest.fixture
def problem():
    grid = Grid(n_x=16, n_y=8, dx_km=1.0, dy_km=1.0)
    rng = np.random.default_rng(0)
    truth = correlated_ensemble(grid, 1, length_scale_km=4.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, 12, length_scale_km=4.0, rng=rng
    )
    net = ObservationNetwork.random(grid, m=40, obs_error_std=0.3, rng=rng)
    y = net.observe(truth, rng=rng)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=2, eta=2)
    return states, net, y, decomp


def _serial_reference(problem, rng=13):
    states, net, y, decomp = problem
    filt = DistributedEnKF(radius_km=2.0, inflation=1.05)
    return filt.assimilate(decomp, states, net, y, rng=rng)


def _supervised_run(problem, faults, policy, rng=13):
    """One assimilation through a supervised 2-worker process pool."""
    states, net, y, decomp = problem
    with AnalysisExecutor(
        strategy="process", workers=2, supervision=policy, faults=faults
    ) as ex:
        filt = DistributedEnKF(radius_km=2.0, inflation=1.05, executor=ex)
        out = filt.assimilate(decomp, states, net, y, rng=rng)
        return out, ex.supervision_stats


def _crash_seed_for_piece(piece: int) -> int:
    """A seed whose only attempt-0 crash draw is ``piece`` (clean retries).

    The schedule is a pure function of ``(seed, site)``, so the search is
    a few thousand hash evaluations — no pools involved.
    """
    for seed in range(50_000):
        s = FaultSchedule(seed, worker_crash_rate=0.2)
        if not s.worker_crash(piece, 0):
            continue
        others = [p for p in range(N_PIECES) if p != piece]
        if any(s.worker_crash(p, 0) for p in others):
            continue
        if any(s.worker_crash(p, 1) for p in range(N_PIECES)):
            continue
        return seed
    raise AssertionError(f"no crash-only-piece-{piece} seed found")


def _hang_seed() -> int:
    """A seed with exactly one attempt-0 hang (its chunk clean at 1)."""
    for seed in range(50_000):
        s = FaultSchedule(seed, worker_hang_rate=0.2, worker_hang_seconds=5.0)
        hangs = [p for p in range(N_PIECES) if s.worker_hang(p, 0) > 0]
        if len(hangs) != 1:
            continue
        chunk = {hangs[0], hangs[0] ^ 1}  # chunk_size 2 -> partner is p^1
        if any(s.worker_hang(p, 1) > 0 for p in chunk):
            continue
        return seed
    raise AssertionError("no single-hang seed found")


class TestDeadlinePolicy:
    def test_floor_applies_before_any_estimate(self):
        policy = DeadlinePolicy(slack=4.0, floor_seconds=10.0)
        assert policy.deadline(8) == 10.0

    def test_observed_estimate_preferred_over_prediction(self):
        policy = DeadlinePolicy(
            slack=2.0, floor_seconds=0.1, predicted_piece_seconds=100.0
        )
        assert policy.deadline(4, observed_piece_seconds=1.0) == 8.0
        assert policy.deadline(4) == 800.0  # cold start: prediction

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(slack=0.5)
        with pytest.raises(ValueError):
            DeadlinePolicy(floor_seconds=0.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(predicted_piece_seconds=-1.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_respawns=-1)

    def test_cost_model_prediction_feeds_the_policy(self):
        from repro.cluster.params import MachineSpec
        from repro.filters.base import PerfScenario

        params = PerfScenario.small().cost_params(MachineSpec.small_cluster())
        predicted = piece_seconds_from_cost_model(params, 4, 4, 3)
        assert predicted > 0.0
        policy = DeadlinePolicy(
            slack=8.0, floor_seconds=1e-6, predicted_piece_seconds=predicted
        )
        assert policy.deadline(8) == pytest.approx(8.0 * predicted * 8)


class TestWorkerCrashRecovery:
    @pytest.mark.parametrize("piece", range(N_PIECES))
    def test_kill_at_every_piece_index_stays_bit_identical(
        self, problem, piece
    ):
        """A worker dying on any single piece: retried, bit-identical."""
        ref = _serial_reference(problem)
        faults = FaultSchedule(
            _crash_seed_for_piece(piece), worker_crash_rate=0.2
        )
        policy = SupervisionPolicy(max_respawns=2, retry=FAST_RETRY)
        out, stats = _supervised_run(problem, faults, policy)
        assert np.array_equal(ref, out)
        assert stats.worker_crashes >= 1
        assert stats.pool_respawns >= 1

    def test_crash_everything_falls_back_serial(self, problem):
        """rate=1.0: every attempt dies; the analysis still completes
        bit-identically via the serial fallback."""
        ref = _serial_reference(problem)
        faults = FaultSchedule(3, worker_crash_rate=1.0)
        policy = SupervisionPolicy(max_respawns=3, retry=FAST_RETRY)
        out, stats = _supervised_run(problem, faults, policy)
        assert np.array_equal(ref, out)
        assert stats.serial_fallback_pieces == N_PIECES
        assert stats.worker_crashes >= 2  # attempt 0 and the retry round

    def test_respawn_budget_exhaustion_degrades_whole_plan(self, problem):
        """max_respawns=0: the first crash degrades the remainder to the
        serial path — no raise, a warning metric, still bit-identical."""
        before = get_metrics().counter("parallel.degraded_serial").value
        ref = _serial_reference(problem)
        faults = FaultSchedule(3, worker_crash_rate=1.0)
        policy = SupervisionPolicy(
            max_respawns=0, retry=RetryPolicy(max_retries=5, base_delay=1e-4)
        )
        out, stats = _supervised_run(problem, faults, policy)
        assert np.array_equal(ref, out)
        assert stats.plan_degrades == 1
        assert stats.pool_respawns == 0
        assert stats.serial_fallback_pieces == N_PIECES
        after = get_metrics().counter("parallel.degraded_serial").value
        assert after == before + 1

    def test_clean_schedule_uses_no_recovery(self, problem):
        ref = _serial_reference(problem)
        policy = SupervisionPolicy(max_respawns=2, retry=FAST_RETRY)
        out, stats = _supervised_run(problem, None, policy)
        assert np.array_equal(ref, out)
        assert stats.worker_crashes == 0
        assert stats.piece_retries == 0


class TestWorkerHangRecovery:
    def test_hang_trips_deadline_then_recovers(self, problem):
        """A wedged worker (real 5 s sleep) is deadlined at the 0.2 s
        floor, the pool killed and respawned, and the retry completes
        bit-identically."""
        ref = _serial_reference(problem)
        faults = FaultSchedule(
            _hang_seed(), worker_hang_rate=0.2, worker_hang_seconds=5.0
        )
        policy = SupervisionPolicy(
            max_respawns=2,
            retry=FAST_RETRY,
            deadline=DeadlinePolicy(slack=1000.0, floor_seconds=0.2),
        )
        out, stats = _supervised_run(problem, faults, policy)
        assert np.array_equal(ref, out)
        assert stats.deadline_hits >= 1
        assert stats.pool_respawns >= 1
        assert stats.worker_crashes == 0


class _WedgedPlan:
    """Fake plan whose second prepare blocks until released."""

    def __init__(self):
        self.pieces = [0, 1, 2]
        self.release = threading.Event()

    def prepare(self, i):
        if i >= 1:
            self.release.wait()
        return (i, None, None)


class TestFeederSupervision:
    def test_wedged_feeder_raises_instead_of_leaking(self, monkeypatch):
        """A hung plan.prepare must surface as an error, not a leaked
        thread: the consumer abandons the iterator, the join times out,
        and the executor raises with the feeder_stuck metric bumped."""
        monkeypatch.setattr(executor_mod, "_FEEDER_JOIN_TIMEOUT", 0.05)
        before = get_metrics().counter("parallel.feeder_stuck").value
        plan = _WedgedPlan()
        with AnalysisExecutor(strategy="serial", prefetch_depth=2) as ex:
            gen = ex._iter_prepared(plan)
            assert next(gen)[0] == 0
            with pytest.raises(RuntimeError, match="wedged"):
                gen.close()
            assert ex.supervision_stats.feeder_stuck == 1
        after = get_metrics().counter("parallel.feeder_stuck").value
        assert after == before + 1
        plan.release.set()  # let the parked thread exit

    def test_healthy_feeder_joins_quietly(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_FEEDER_JOIN_TIMEOUT", 5.0)
        plan = _WedgedPlan()
        plan.release.set()  # never blocks
        with AnalysisExecutor(strategy="serial", prefetch_depth=2) as ex:
            assert [p[0] for p in ex._iter_prepared(plan)] == [0, 1, 2]
            assert ex.supervision_stats.feeder_stuck == 0


def _campaign(tmp_path, name, executor=None):
    """A tiny real campaign over the shared fixture problem."""
    from repro.filters import PEnKF
    from repro.models import AdvectionDiffusionModel, TwinExperiment

    grid = Grid(n_x=16, n_y=8, dx_km=2.5, dy_km=5.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 12, length_scale_km=12.0, mean=np.zeros(grid.n), std=0.8,
        rng=rng,
    )
    net = ObservationNetwork.random(
        grid, m=40, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=2, eta=1)
    filt = PEnKF(radius_km=6.0, inflation=1.05, ridge=1e-2,
                 executor=executor)
    twin = TwinExperiment(
        model,
        net,
        lambda states, y, rng: filt.assimilate(
            decomp, states, net, y, rng=rng
        ),
        steps_per_cycle=3,
        master_seed=5,
    )
    runner = CampaignRunner(
        twin, tmp_path / name, interval=1,
        config={"experiment": "test-supervise"},
    )
    return runner, truth0, ensemble0


class TestCampaignSupervise:
    N_CYCLES = 4

    def test_restart_after_crash_and_corruption_is_bit_identical(
        self, tmp_path
    ):
        """SimulatedCrash mid-campaign + a corrupted newest checkpoint:
        supervise() quarantines, fails over, restarts once and finishes
        with the exact serial-reference ensemble."""
        ref_runner, truth0, ensemble0 = _campaign(tmp_path, "ref")
        ref_runner.run(truth0, ensemble0, self.N_CYCLES)
        ref_final = ref_runner.store.load(self.N_CYCLES).ensemble

        runner, truth0, ensemble0 = _campaign(tmp_path, "supervised")
        fired = []

        def kill_once(state):
            if state.cycle == 3 and not fired:
                fired.append(state.cycle)
                raise SimulatedCrash("boom after cycle 3")

        def corrupt_newest(restart, exc):
            # Damage the newest checkpoint before the restart resumes, so
            # load_best must quarantine it and fail over one interval.
            newest = runner.store.latest()
            victim = sorted(
                runner.store.cycle_dir(newest).glob("member_*.bin")
            )[0]
            blob = bytearray(victim.read_bytes())
            blob[:64] = b"\xff" * 64
            victim.write_bytes(bytes(blob))

        slept = []
        result = runner.supervise(
            truth0, ensemble0, self.N_CYCLES,
            max_restarts=2, on_cycle=kill_once, on_restart=corrupt_newest,
            sleep=slept.append,
        )
        assert result.n_cycles == self.N_CYCLES
        report = runner.supervision
        assert report is not None
        assert report.restarts == 1
        assert report.max_restarts == 2
        assert report.restart_errors == ["SimulatedCrash: boom after cycle 3"]
        assert slept and report.backoff_seconds == pytest.approx(sum(slept))
        final = runner.store.load(self.N_CYCLES).ensemble
        assert np.array_equal(ref_final, final)

    def test_supervised_worker_chaos_campaign_matches_serial(self, tmp_path):
        """The acceptance scenario at test scale: real worker crashes
        under the process strategy inside a supervised campaign."""
        ref_runner, truth0, ensemble0 = _campaign(tmp_path, "ref")
        ref_runner.run(truth0, ensemble0, 2)
        ref_final = ref_runner.store.load(2).ensemble

        faults = FaultSchedule(3, worker_crash_rate=1.0)
        executor = AnalysisExecutor(
            strategy="process", workers=2,
            supervision=SupervisionPolicy(max_respawns=1, retry=FAST_RETRY),
            faults=faults,
        )
        try:
            runner, truth0, ensemble0 = _campaign(
                tmp_path, "chaos", executor=executor
            )
            result = runner.supervise(
                truth0, ensemble0, 2, max_restarts=1, sleep=lambda s: None
            )
        finally:
            executor.close()
        assert result.n_cycles == 2
        report = runner.supervision
        assert report.restarts == 0  # executor self-healed; no restart
        assert report.worker_crashes >= 1
        assert report.serial_fallback_pieces >= 1
        final = runner.store.load(2).ensemble
        assert np.array_equal(ref_final, final)

    def test_budget_exhaustion_reraises_with_report(self, tmp_path):
        runner, truth0, ensemble0 = _campaign(tmp_path, "doomed")

        def always_crash(state):
            raise SimulatedCrash("sticky crash")

        with pytest.raises(SimulatedCrash):
            runner.supervise(
                truth0, ensemble0, self.N_CYCLES,
                max_restarts=1, on_cycle=always_crash, sleep=lambda s: None,
            )
        report = runner.supervision
        assert report is not None
        assert report.restarts == 1
        assert len(report.restart_errors) == 2  # initial + failed restart

    def test_non_restartable_errors_stay_fatal(self, tmp_path):
        runner, truth0, ensemble0 = _campaign(tmp_path, "fatal")

        def programming_error(state):
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            runner.supervise(
                truth0, ensemble0, self.N_CYCLES,
                max_restarts=3, on_cycle=programming_error,
                sleep=lambda s: None,
            )

    def test_run_report_embeds_supervision(self, tmp_path):
        runner, truth0, ensemble0 = _campaign(tmp_path, "reported")
        result = runner.supervise(
            truth0, ensemble0, 2, max_restarts=1, sleep=lambda s: None
        )
        report = runner.run_report(result)
        payload = validate_run_report(json.loads(report.to_json()))
        assert payload["supervision"]["restarts"] == 0
        assert payload["supervision"]["recovery_fraction"] >= 0.0
        rebuilt = RunReport.from_dict(payload)
        assert rebuilt.supervision == payload["supervision"]


class TestRunReportSupervisionField:
    def test_absent_supervision_still_validates(self):
        payload = RunReport(kind="twin-campaign").to_dict()
        assert validate_run_report(payload)["supervision"] is None

    def test_wrong_type_rejected(self):
        payload = RunReport(kind="twin-campaign").to_dict()
        payload["supervision"] = [1, 2]
        with pytest.raises(ValueError, match="supervision"):
            validate_run_report(payload)
