"""Tests for the on-disk ensemble store and real-file plan execution."""

import numpy as np
import pytest

from repro.core import Decomposition, Grid
from repro.data import EnsembleStore, read_plan_from_disk
from repro.io import (
    bar_read_plan,
    block_read_plan,
    execute_read_plan_inline,
    single_reader_plan,
)


@pytest.fixture()
def store(tmp_path):
    return EnsembleStore(tmp_path / "ens", Grid(n_x=24, n_y=12))


@pytest.fixture()
def filled(store):
    rng = np.random.default_rng(0)
    states = rng.normal(size=(store.grid.n, 5))
    store.write_ensemble(states)
    return store, states


class TestEnsembleStore:
    def test_roundtrip_member(self, store):
        state = np.arange(float(store.grid.n))
        store.write_member(0, state)
        assert np.array_equal(store.read_member(0), state)

    def test_roundtrip_ensemble(self, filled):
        store, states = filled
        assert np.allclose(store.read_ensemble(), states)

    def test_n_members(self, filled):
        store, _ = filled
        assert store.n_members() == 5

    def test_layout_matches_dtype(self, store):
        assert store.layout.h_bytes == 8
        assert store.layout.file_bytes == store.grid.n * 8

    def test_wrong_shape_rejected(self, store):
        with pytest.raises(ValueError):
            store.write_member(0, np.zeros(5))
        with pytest.raises(ValueError):
            store.write_ensemble(np.zeros((5, 2)))

    def test_missing_member_raises(self, store):
        with pytest.raises(FileNotFoundError):
            store.read_member(3)

    def test_empty_store_read_raises(self, store):
        with pytest.raises(FileNotFoundError):
            store.read_ensemble()

    def test_negative_index_rejected(self, store):
        with pytest.raises(ValueError):
            store.member_path(-1)

    def test_file_is_latitude_row_major(self, store):
        """Row iy of the field occupies bytes [iy*n_x .. (iy+1)*n_x) * 8."""
        grid = store.grid
        field = np.arange(float(grid.n)).reshape(grid.n_y, grid.n_x)
        store.write_member(0, field.ravel())
        raw = np.fromfile(store.member_path(0), dtype="<f8")
        assert np.array_equal(raw[grid.n_x : 2 * grid.n_x], field[1])

    def test_read_extents_with_real_seeks(self, filled):
        store, states = filled
        extents = [(0, 3), (30, 5), (100, 2)]
        got = store.read_extents(1, extents)
        want = np.concatenate(
            [states[s : s + l, 1] for s, l in extents]
        )
        assert np.allclose(got, want)

    def test_read_extents_out_of_range(self, filled):
        store, _ = filled
        with pytest.raises(ValueError):
            store.read_extents(0, [(store.grid.n - 1, 5)])


class TestReadPlanFromDisk:
    @pytest.mark.parametrize(
        "plan_fn", [block_read_plan, bar_read_plan, single_reader_plan]
    )
    def test_disk_execution_matches_inline(self, filled, plan_fn):
        """Real seek/read execution of every strategy == in-memory gather."""
        store, states = filled
        decomp = Decomposition(store.grid, n_sdx=4, n_sdy=3, xi=2, eta=1)
        plan = plan_fn(decomp, store.layout, n_files=5)
        members = {k: states[:, k] for k in range(5)}
        from_disk = read_plan_from_disk(plan, store)
        inline = execute_read_plan_inline(plan, members)
        assert from_disk.keys() == inline.keys()
        for rank in inline:
            assert from_disk[rank].keys() == inline[rank].keys()
            for f in inline[rank]:
                assert np.allclose(from_disk[rank][f], inline[rank][f])

    def test_block_plan_delivers_expansions_from_disk(self, filled):
        store, states = filled
        decomp = Decomposition(store.grid, n_sdx=2, n_sdy=2, xi=2, eta=1)
        plan = block_read_plan(decomp, store.layout, n_files=2)
        staged = read_plan_from_disk(plan, store)
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            for f in range(2):
                got = np.sort(staged[rank][f])
                want = np.sort(states[sd.expansion_flat, f])
                assert np.allclose(got, want)


class TestAtomicWrites:
    """write_member stages + fsyncs + os.replace: no torn member is visible."""

    def test_crash_before_commit_keeps_previous_member(self, store, monkeypatch):
        import repro.data.store as store_mod

        original = np.arange(float(store.grid.n))
        store.write_member(0, original)

        def crash(src, dst):
            raise OSError("injected crash between stage and commit")

        monkeypatch.setattr(store_mod.os, "replace", crash)
        with pytest.raises(OSError):
            store.write_member(0, original + 1.0)
        monkeypatch.undo()
        # The staged bytes never replaced the committed file: a reader
        # still sees the previous complete member, bit for bit.
        assert np.array_equal(store.read_member(0), original)

    def test_staging_litter_invisible_to_readers(self, filled):
        store, states = filled
        litter = store.member_path(2).with_name("member_00002.bin.tmp")
        litter.write_bytes(b"torn half-write")
        assert store.n_members() == 5
        assert np.allclose(store.read_ensemble(), states)

    def test_commit_overwrites_stale_staging(self, store):
        stale = store.member_path(0).with_name("member_00000.bin.tmp")
        stale.write_bytes(b"stale staging from an earlier crash")
        state = np.arange(float(store.grid.n))
        store.write_member(0, state)
        assert np.array_equal(store.read_member(0), state)
