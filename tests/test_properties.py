"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Decomposition, Grid
from repro.core.cholesky import modified_cholesky_inverse
from repro.io import FileLayout, contiguous_runs
from repro.sim import Environment, Resource, merge_intervals, union_total
from repro.sim.trace import intersect_total


# ---------------------------------------------------------------------------
# Interval arithmetic
# ---------------------------------------------------------------------------
intervals_strategy = st.lists(
    st.tuples(
        st.floats(0, 100, allow_nan=False, allow_infinity=False),
        st.floats(0, 100, allow_nan=False, allow_infinity=False),
    ).map(lambda ab: (min(ab), max(ab))),
    max_size=20,
)


class TestIntervalProperties:
    @given(intervals_strategy)
    def test_merge_produces_disjoint_sorted(self, intervals):
        merged = merge_intervals(intervals)
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert e1 < s2
        for s, e in merged:
            assert e > s

    @given(intervals_strategy)
    def test_union_never_exceeds_sum(self, intervals):
        assert union_total(intervals) <= sum(e - s for s, e in intervals) + 1e-9

    @given(intervals_strategy)
    def test_union_idempotent(self, intervals):
        merged = merge_intervals(intervals)
        assert merge_intervals(merged) == merged

    @given(intervals_strategy, intervals_strategy)
    def test_intersection_bounded_by_each_union(self, a, b):
        inter = intersect_total(a, b)
        assert inter <= union_total(a) + 1e-9
        assert inter <= union_total(b) + 1e-9
        assert inter >= 0

    @given(intervals_strategy, intervals_strategy)
    def test_intersection_symmetric(self, a, b):
        assert intersect_total(a, b) == pytest.approx(
            intersect_total(b, a), abs=1e-9
        )

    @given(intervals_strategy)
    def test_self_intersection_is_union(self, a):
        assert intersect_total(a, a) == pytest.approx(union_total(a), abs=1e-9)


# ---------------------------------------------------------------------------
# Contiguous runs / layouts
# ---------------------------------------------------------------------------
class TestRunProperties:
    @given(st.lists(st.integers(0, 500), max_size=60))
    def test_runs_cover_exactly_the_input_set(self, indices):
        runs = contiguous_runs(np.array(indices, dtype=int))
        covered = set()
        for start, length in runs:
            covered.update(range(start, start + length))
        assert covered == set(indices)

    @given(st.lists(st.integers(0, 500), max_size=60))
    def test_runs_are_disjoint_and_sorted(self, indices):
        runs = contiguous_runs(np.array(indices, dtype=int))
        for (s1, l1), (s2, _) in zip(runs, runs[1:]):
            assert s1 + l1 < s2  # gap, otherwise they'd be one run


@st.composite
def grid_and_rows(draw):
    n_x = draw(st.integers(2, 64))
    n_y = draw(st.integers(2, 64))
    iy0 = draw(st.integers(0, n_y - 1))
    iy1 = draw(st.integers(iy0 + 1, n_y))
    return Grid(n_x=n_x, n_y=n_y), iy0, iy1


class TestLayoutProperties:
    @given(grid_and_rows())
    def test_bar_is_always_one_extent_of_right_size(self, args):
        grid, iy0, iy1 = args
        layout = FileLayout(grid=grid, h_bytes=8)
        extents = layout.bar_extents(iy0, iy1)
        assert len(extents) == 1
        assert extents[0][1] == (iy1 - iy0) * grid.n_x

    @given(grid_and_rows(), st.data())
    def test_block_extents_cover_exactly_the_block(self, args, data):
        grid, iy0, iy1 = args
        x0 = data.draw(st.integers(0, grid.n_x - 1))
        width = data.draw(st.integers(1, grid.n_x))
        cols = np.mod(np.arange(x0, x0 + width), grid.n_x)
        layout = FileLayout(grid=grid, h_bytes=8)
        extents = layout.block_extents(cols, iy0, iy1)
        got = set(FileLayout.extent_indices(extents))
        want = {
            int(iy * grid.n_x + ix)
            for iy in range(iy0, iy1)
            for ix in set(int(c) for c in cols)
        }
        assert got == want


# ---------------------------------------------------------------------------
# Domain decomposition
# ---------------------------------------------------------------------------
@st.composite
def decompositions(draw):
    # Pick grid sizes with guaranteed divisors.
    sdx = draw(st.integers(1, 6))
    sdy = draw(st.integers(1, 6))
    bx = draw(st.integers(1, 8))
    by = draw(st.integers(1, 8))
    xi = draw(st.integers(0, 4))
    eta = draw(st.integers(0, 4))
    grid = Grid(n_x=sdx * bx, n_y=sdy * by)
    return Decomposition(grid, n_sdx=sdx, n_sdy=sdy, xi=xi, eta=eta)


class TestDecompositionProperties:
    @given(decompositions())
    @settings(max_examples=50)
    def test_interiors_partition_mesh(self, decomp):
        seen = np.concatenate([sd.interior_flat for sd in decomp])
        assert np.array_equal(np.sort(seen), np.arange(decomp.grid.n))

    @given(decompositions())
    @settings(max_examples=50)
    def test_expansion_contains_interior(self, decomp):
        for sd in decomp:
            assert set(sd.interior_flat) <= set(sd.expansion_flat)

    @given(decompositions())
    @settings(max_examples=50)
    def test_projection_indices_roundtrip(self, decomp):
        for sd in decomp:
            pos = sd.interior_positions_in_expansion
            assert np.array_equal(sd.expansion_flat[pos], sd.interior_flat)

    @given(decompositions())
    @settings(max_examples=50)
    def test_rank_mapping_bijective(self, decomp):
        ranks = {decomp.rank_of(sd.i, sd.j) for sd in decomp}
        assert ranks == set(range(decomp.n_subdomains))

    @given(decompositions(), st.data())
    @settings(max_examples=50)
    def test_owner_consistent_with_interior(self, decomp, data):
        ix = data.draw(st.integers(0, decomp.grid.n_x - 1))
        iy = data.draw(st.integers(0, decomp.grid.n_y - 1))
        rank = decomp.owner_of_point(ix, iy)
        sd = decomp.subdomain_of_rank(rank)
        assert decomp.grid.flat_index(ix, iy) in set(sd.interior_flat)


# ---------------------------------------------------------------------------
# Modified Cholesky
# ---------------------------------------------------------------------------
class TestCholeskyProperties:
    @given(
        st.integers(3, 12),  # n
        st.integers(2, 10),  # N members
        st.floats(0.5, 5.0),  # radius
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_spd(self, n, members, radius, seed):
        rng = np.random.default_rng(seed)
        states = rng.normal(size=(n, members))
        grid = Grid(n_x=n, n_y=1, periodic_x=False)
        binv = modified_cholesky_inverse(
            states, grid, np.arange(n), np.zeros(n, dtype=int), radius_km=radius
        )
        assert np.allclose(binv, binv.T, atol=1e-10)
        assert np.linalg.eigvalsh(binv).min() > 0


# ---------------------------------------------------------------------------
# DES kernel
# ---------------------------------------------------------------------------
class TestSimProperties:
    @given(st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=30))
    def test_clock_visits_events_in_order(self, delays):
        env = Environment()
        visited = []

        def proc(env, d):
            yield env.timeout(d)
            visited.append(env.now)

        for d in delays:
            env.process(proc(env, d))
        env.run()
        assert visited == sorted(visited)
        assert len(visited) == len(delays)

    @given(
        st.integers(1, 5),  # capacity
        st.lists(st.floats(0.01, 2.0, allow_nan=False), min_size=1, max_size=15),
    )
    def test_resource_conserves_work(self, capacity, services):
        """Total busy time equals the sum of services; makespan is bounded
        by work/capacity (lower) and total work (upper)."""
        env = Environment()
        res = Resource(env, capacity=capacity)

        def user(env, s):
            with res.request() as req:
                yield req
                yield env.timeout(s)

        for s in services:
            env.process(user(env, s))
        env.run()
        total = sum(services)
        assert env.now <= total + 1e-9
        assert env.now >= total / capacity - 1e-9
        assert env.now >= max(services) - 1e-9

    @given(st.lists(st.floats(0.01, 2.0, allow_nan=False), min_size=1, max_size=10))
    def test_fifo_resource_equals_sequential_sum(self, services):
        env = Environment()
        res = Resource(env, capacity=1)

        def user(env, s):
            with res.request() as req:
                yield req
                yield env.timeout(s)

        for s in services:
            env.process(user(env, s))
        env.run()
        assert env.now == pytest.approx(sum(services))


# ---------------------------------------------------------------------------
# Simulated MPI collectives
# ---------------------------------------------------------------------------
class TestCollectiveProperties:
    @given(
        st.integers(1, 12),
        st.integers(0, 11),
        st.lists(st.integers(-100, 100), min_size=12, max_size=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_allreduce_equals_plain_sum(self, size, root_seed, values):
        from repro.cluster import Machine, MachineSpec
        from repro.mpisim import Communicator

        machine = Machine(MachineSpec())
        comm = Communicator(machine, size=size)
        got = {}

        def main(ctx):
            total = yield from ctx.allreduce(nbytes=8, value=values[ctx.rank])
            got[ctx.rank] = total

        comm.spawn(main)
        machine.run()
        expected = sum(values[:size])
        assert got == {r: expected for r in range(size)}

    @given(st.integers(1, 12), st.integers(0, 11))
    @settings(max_examples=30, deadline=None)
    def test_bcast_reaches_all_from_any_root(self, size, root):
        from repro.cluster import Machine, MachineSpec
        from repro.mpisim import Communicator

        root = root % size
        machine = Machine(MachineSpec())
        comm = Communicator(machine, size=size)
        got = {}

        def main(ctx):
            payload = "x" if ctx.rank == root else None
            value = yield from ctx.bcast(root=root, nbytes=1, payload=payload)
            got[ctx.rank] = value

        comm.spawn(main)
        machine.run()
        assert got == {r: "x" for r in range(size)}

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_alltoall_is_a_transpose(self, size):
        from repro.cluster import Machine, MachineSpec
        from repro.mpisim import Communicator

        machine = Machine(MachineSpec())
        comm = Communicator(machine, size=size)
        got = {}

        def main(ctx):
            payloads = [(ctx.rank, d) for d in range(size)]
            out = yield from ctx.alltoall(nbytes_per_pair=8, payloads=payloads)
            got[ctx.rank] = out

        comm.spawn(main)
        machine.run()
        for r in range(size):
            assert got[r] == [(s, r) for s in range(size)]
