"""Tests for phase tracing and interval arithmetic."""

import pytest

from repro.sim import (
    PhaseRecord,
    Timeline,
    intersect_total,
    merge_intervals,
    union_total,
)
from repro.sim.trace import (
    ALL_PHASES,
    PHASE_CHECKPOINT,
    PHASE_COMM,
    PHASE_COMPUTE,
    PHASE_FAILED,
    PHASE_READ,
    PHASE_RETRY,
    PHASE_WAIT,
)


class TestIntervals:
    def test_merge_disjoint(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_union_total(self):
        assert union_total([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)

    def test_intersect_disjoint(self):
        assert intersect_total([(0, 1)], [(2, 3)]) == 0.0

    def test_intersect_nested(self):
        assert intersect_total([(0, 10)], [(2, 4), (6, 7)]) == pytest.approx(3.0)

    def test_intersect_partial(self):
        assert intersect_total([(0, 5)], [(3, 8)]) == pytest.approx(2.0)

    def test_intersect_symmetric(self):
        a = [(0, 4), (6, 9)]
        b = [(2, 7)]
        assert intersect_total(a, b) == pytest.approx(intersect_total(b, a))


class TestIntervalEdgeCases:
    def test_zero_length_intervals_contribute_nothing(self):
        assert union_total([(3, 3), (0, 2), (2, 2)]) == pytest.approx(2.0)

    def test_all_zero_length_unions_to_zero(self):
        assert union_total([(1, 1), (5, 5)]) == 0.0

    def test_touching_intervals_merge_without_double_count(self):
        # [0,1) and [1,2) share only the boundary point (measure zero):
        # they merge into one interval and the union is exactly 2.
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]
        assert union_total([(0, 1), (1, 2)]) == pytest.approx(2.0)

    def test_touching_chain_collapses_to_one_interval(self):
        chain = [(k, k + 1) for k in range(5)]
        assert merge_intervals(chain) == [(0, 5)]

    def test_zero_length_between_touching_intervals(self):
        # The degenerate (1, 1) must not break the touching merge.
        assert merge_intervals([(0, 1), (1, 1), (1, 2)]) == [(0, 2)]

    def test_intersect_with_zero_length_interval(self):
        assert intersect_total([(1, 1)], [(0, 2)]) == 0.0

    def test_intersect_touching_is_zero(self):
        assert intersect_total([(0, 1)], [(1, 2)]) == 0.0

    def test_union_total_of_retry_phases(self):
        # Retry backoff windows of two ranks overlap: the union counts
        # the wall-clock cost once, not per rank.
        tl = Timeline()
        tl.add(0, PHASE_RETRY, 1.0, 3.0)
        tl.add(1, PHASE_RETRY, 2.0, 4.0)
        assert union_total(tl.intervals(PHASE_RETRY)) == pytest.approx(3.0)
        assert tl.total(PHASE_RETRY) == pytest.approx(4.0)  # summed view

    def test_union_total_mixes_retry_and_failed(self):
        tl = Timeline()
        tl.add(0, PHASE_RETRY, 0.0, 2.0)
        tl.add(0, PHASE_FAILED, 2.0, 5.0)  # touching: terminal failure
        lost = union_total(
            tl.intervals(PHASE_RETRY) + tl.intervals(PHASE_FAILED)
        )
        assert lost == pytest.approx(5.0)


class TestCheckpointPhase:
    def test_checkpoint_is_a_canonical_phase(self):
        assert PHASE_CHECKPOINT in ALL_PHASES

    def test_checkpoint_ordering_in_timeline_phases(self):
        tl = Timeline()
        tl.add(0, PHASE_RETRY, 0.0, 1.0)
        tl.add(0, PHASE_CHECKPOINT, 1.0, 2.0)
        tl.add(0, PHASE_READ, 2.0, 3.0)
        assert tl.phases() == [PHASE_READ, PHASE_CHECKPOINT, PHASE_RETRY]

    def test_campaign_report_cycle_timeline(self):
        from repro.filters.cycling import CampaignReport

        report = CampaignReport(
            filter_name="s-enkf",
            n_p=18,
            n_cycles=10,
            forecast_time=4.0,
            output_time=1.0,
            assimilation_time=2.0,
            checkpoint_time=3.0,
            checkpoint_interval=3,
        )
        tl = report.cycle_timeline()
        assert tl.total(PHASE_COMPUTE) == pytest.approx(6.0)
        assert tl.total(PHASE_READ) == pytest.approx(1.0)
        assert tl.total(PHASE_CHECKPOINT) == pytest.approx(1.0)
        assert tl.makespan() == pytest.approx(report.cycle_time)
        # phases are laid out back to back on one rank
        assert tl.ranks() == [0]
        assert union_total(tl.intervals()) == pytest.approx(report.cycle_time)

    def test_cycle_timeline_without_checkpointing(self):
        from repro.filters.cycling import CampaignReport

        report = CampaignReport(
            filter_name="p-enkf",
            n_p=18,
            n_cycles=10,
            forecast_time=4.0,
            output_time=1.0,
            assimilation_time=2.0,
        )
        tl = report.cycle_timeline()
        assert tl.total(PHASE_CHECKPOINT) == 0.0
        assert tl.makespan() == pytest.approx(7.0)


class TestPhaseRecord:
    def test_duration(self):
        assert PhaseRecord(0, PHASE_READ, 1.0, 3.5).duration == 2.5

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseRecord(0, PHASE_READ, 3.0, 1.0)


class TestTimeline:
    def make(self):
        tl = Timeline()
        # rank 0: I/O processor — reads then communicates
        tl.add(0, PHASE_READ, 0.0, 4.0)
        tl.add(0, PHASE_COMM, 4.0, 6.0)
        # rank 1: compute processor — waits then computes
        tl.add(1, PHASE_WAIT, 0.0, 2.0)
        tl.add(1, PHASE_COMPUTE, 2.0, 10.0)
        return tl

    def test_zero_length_records_dropped(self):
        tl = Timeline()
        tl.add(0, PHASE_READ, 1.0, 1.0)
        assert tl.records == []

    def test_ranks_sorted(self):
        assert self.make().ranks() == [0, 1]

    def test_phases_in_canonical_order(self):
        assert self.make().phases() == [
            PHASE_READ,
            PHASE_COMM,
            PHASE_COMPUTE,
            PHASE_WAIT,
        ]

    def test_total_by_phase(self):
        tl = self.make()
        assert tl.total(PHASE_READ) == 4.0
        assert tl.total(PHASE_COMPUTE) == 8.0

    def test_total_by_phase_and_rank(self):
        tl = self.make()
        assert tl.total(PHASE_READ, rank=1) == 0.0
        assert tl.total(PHASE_WAIT, rank=1) == 2.0

    def test_makespan(self):
        assert self.make().makespan() == 10.0

    def test_makespan_empty(self):
        assert Timeline().makespan() == 0.0

    def test_per_rank_totals(self):
        totals = self.make().per_rank_totals()
        assert totals[0] == {PHASE_READ: 4.0, PHASE_COMM: 2.0}
        assert totals[1] == {PHASE_WAIT: 2.0, PHASE_COMPUTE: 8.0}

    def test_mean_phase_totals_filtered(self):
        tl = self.make()
        means = tl.mean_phase_totals(ranks=[1])
        assert means == {PHASE_WAIT: 2.0, PHASE_COMPUTE: 8.0}

    def test_intervals_filters(self):
        tl = self.make()
        assert tl.intervals(PHASE_READ) == [(0.0, 4.0)]
        assert tl.intervals(PHASE_READ, ranks=[1]) == []

    def test_overlapped_time_io_hidden_behind_compute(self):
        tl = self.make()
        # Compute busy on [2,10]; I/O-side read [0,4] + comm [4,6] intersect
        # that on [2,6] = 4.0, plus compute-rank wait [0,2] intersects nothing.
        overlapped = tl.overlapped_time(compute_ranks=[1], io_ranks=[0])
        assert overlapped == pytest.approx(4.0)

    def test_overlap_zero_when_no_compute(self):
        tl = Timeline()
        tl.add(0, PHASE_READ, 0.0, 5.0)
        assert tl.overlapped_time(compute_ranks=[1], io_ranks=[0]) == 0.0

    def test_extend_merges_records(self):
        a = self.make()
        b = Timeline()
        b.add(2, PHASE_COMPUTE, 0.0, 1.0)
        a.extend(b)
        assert 2 in a.ranks()
