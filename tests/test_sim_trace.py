"""Tests for phase tracing and interval arithmetic."""

import pytest

from repro.sim import (
    PhaseRecord,
    Timeline,
    intersect_total,
    merge_intervals,
    union_total,
)
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


class TestIntervals:
    def test_merge_disjoint(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_merge_overlapping(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_merge_touching(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_merge_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1), (0.5, 2)]) == [(0, 2), (5, 6)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(1, 1), (2, 2)]) == []

    def test_union_total(self):
        assert union_total([(0, 2), (1, 3), (10, 11)]) == pytest.approx(4.0)

    def test_intersect_disjoint(self):
        assert intersect_total([(0, 1)], [(2, 3)]) == 0.0

    def test_intersect_nested(self):
        assert intersect_total([(0, 10)], [(2, 4), (6, 7)]) == pytest.approx(3.0)

    def test_intersect_partial(self):
        assert intersect_total([(0, 5)], [(3, 8)]) == pytest.approx(2.0)

    def test_intersect_symmetric(self):
        a = [(0, 4), (6, 9)]
        b = [(2, 7)]
        assert intersect_total(a, b) == pytest.approx(intersect_total(b, a))


class TestPhaseRecord:
    def test_duration(self):
        assert PhaseRecord(0, PHASE_READ, 1.0, 3.5).duration == 2.5

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseRecord(0, PHASE_READ, 3.0, 1.0)


class TestTimeline:
    def make(self):
        tl = Timeline()
        # rank 0: I/O processor — reads then communicates
        tl.add(0, PHASE_READ, 0.0, 4.0)
        tl.add(0, PHASE_COMM, 4.0, 6.0)
        # rank 1: compute processor — waits then computes
        tl.add(1, PHASE_WAIT, 0.0, 2.0)
        tl.add(1, PHASE_COMPUTE, 2.0, 10.0)
        return tl

    def test_zero_length_records_dropped(self):
        tl = Timeline()
        tl.add(0, PHASE_READ, 1.0, 1.0)
        assert tl.records == []

    def test_ranks_sorted(self):
        assert self.make().ranks() == [0, 1]

    def test_phases_in_canonical_order(self):
        assert self.make().phases() == [
            PHASE_READ,
            PHASE_COMM,
            PHASE_COMPUTE,
            PHASE_WAIT,
        ]

    def test_total_by_phase(self):
        tl = self.make()
        assert tl.total(PHASE_READ) == 4.0
        assert tl.total(PHASE_COMPUTE) == 8.0

    def test_total_by_phase_and_rank(self):
        tl = self.make()
        assert tl.total(PHASE_READ, rank=1) == 0.0
        assert tl.total(PHASE_WAIT, rank=1) == 2.0

    def test_makespan(self):
        assert self.make().makespan() == 10.0

    def test_makespan_empty(self):
        assert Timeline().makespan() == 0.0

    def test_per_rank_totals(self):
        totals = self.make().per_rank_totals()
        assert totals[0] == {PHASE_READ: 4.0, PHASE_COMM: 2.0}
        assert totals[1] == {PHASE_WAIT: 2.0, PHASE_COMPUTE: 8.0}

    def test_mean_phase_totals_filtered(self):
        tl = self.make()
        means = tl.mean_phase_totals(ranks=[1])
        assert means == {PHASE_WAIT: 2.0, PHASE_COMPUTE: 8.0}

    def test_intervals_filters(self):
        tl = self.make()
        assert tl.intervals(PHASE_READ) == [(0.0, 4.0)]
        assert tl.intervals(PHASE_READ, ranks=[1]) == []

    def test_overlapped_time_io_hidden_behind_compute(self):
        tl = self.make()
        # Compute busy on [2,10]; I/O-side read [0,4] + comm [4,6] intersect
        # that on [2,6] = 4.0, plus compute-rank wait [0,2] intersects nothing.
        overlapped = tl.overlapped_time(compute_ranks=[1], io_ranks=[0])
        assert overlapped == pytest.approx(4.0)

    def test_overlap_zero_when_no_compute(self):
        tl = Timeline()
        tl.add(0, PHASE_READ, 0.0, 5.0)
        assert tl.overlapped_time(compute_ranks=[1], io_ranks=[0]) == 0.0

    def test_extend_merges_records(self):
        a = self.make()
        b = Timeline()
        b.add(2, PHASE_COMPUTE, 0.0, 1.0)
        a.extend(b)
        assert 2 in a.ranks()
