"""Tests for the analysis write-back strategies."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import Decomposition, Grid
from repro.io import (
    FileLayout,
    bar_gather_write_plan,
    block_write_plan,
    simulate_write_plan,
)


def setup(n_x=24, n_y=12, n_sdx=4, n_sdy=3, xi=2, eta=1):
    grid = Grid(n_x=n_x, n_y=n_y)
    decomp = Decomposition(grid, n_sdx=n_sdx, n_sdy=n_sdy, xi=xi, eta=eta)
    return decomp, FileLayout(grid=grid, h_bytes=8)


def machine(**kw):
    defaults = dict(seek_time=1e-3, theta=1e-8, n_storage_nodes=3,
                    disk_concurrency=2)
    defaults.update(kw)
    return Machine(MachineSpec(**defaults))


class TestBlockWritePlan:
    def test_every_rank_writes_interiors(self):
        decomp, layout = setup()
        plan = block_write_plan(decomp, layout, n_files=2)
        assert plan.reader_ranks == list(range(decomp.n_subdomains))
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            op = plan.per_rank[rank].reads[0]
            assert set(op.indices()) == set(sd.interior_flat)

    def test_interiors_tile_file_exactly(self):
        decomp, layout = setup()
        plan = block_write_plan(decomp, layout, n_files=1)
        covered = []
        for rp in plan.per_rank.values():
            covered.extend(rp.reads[0].indices())
        assert sorted(covered) == list(range(decomp.grid.n))

    def test_one_seek_per_row(self):
        decomp, layout = setup()
        plan = block_write_plan(decomp, layout, n_files=1)
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            assert plan.per_rank[rank].reads[0].seeks == sd.n_rows


class TestBarGatherWritePlan:
    def test_writers_write_whole_bars_single_seek(self):
        decomp, layout = setup()
        plan = bar_gather_write_plan(decomp, layout, n_files=4, n_cg=2)
        io_base = decomp.n_subdomains
        for rank in plan.reader_ranks:
            assert rank >= io_base
            for op in plan.per_rank[rank].reads:
                assert op.seeks == 1
                assert op.n_elems == decomp.block_rows * decomp.grid.n_x

    def test_bars_tile_each_file(self):
        decomp, layout = setup()
        plan = bar_gather_write_plan(decomp, layout, n_files=1, n_cg=1)
        covered = []
        for rp in plan.per_rank.values():
            for op in rp.reads:
                covered.extend(op.indices())
        assert sorted(covered) == list(range(decomp.grid.n))

    def test_compute_ranks_send_interior_blocks(self):
        decomp, layout = setup()
        plan = bar_gather_write_plan(decomp, layout, n_files=2, n_cg=1)
        sends = [s for rp in plan.per_rank.values() for s in rp.sends]
        assert len(sends) == 2 * decomp.n_subdomains
        for s in sends:
            sd = decomp.subdomain_of_rank(s.source)
            assert s.n_elems == sd.size

    def test_divisibility(self):
        decomp, layout = setup()
        with pytest.raises(ValueError):
            bar_gather_write_plan(decomp, layout, n_files=5, n_cg=2)


class TestSimulatedWriting:
    def test_block_write_produces_time(self):
        decomp, layout = setup()
        plan = block_write_plan(decomp, layout, n_files=2)
        _, makespan = simulate_write_plan(machine(), plan)
        assert makespan > 0

    def test_bar_write_beats_block_write_when_seek_bound(self):
        decomp, layout = setup(n_x=48, n_y=12, n_sdx=8, n_sdy=3)
        block = block_write_plan(decomp, layout, n_files=3)
        bars = bar_gather_write_plan(decomp, layout, n_files=3, n_cg=1)
        _, t_block = simulate_write_plan(machine(seek_time=1e-2, theta=1e-9),
                                         block)
        _, t_bar = simulate_write_plan(machine(seek_time=1e-2, theta=1e-9),
                                       bars)
        assert t_bar < t_block

    def test_concurrent_groups_speed_up_writing(self):
        decomp, layout = setup(n_x=48, n_y=12, n_sdy=3)
        times = {}
        for n_cg in (1, 3):
            plan = bar_gather_write_plan(decomp, layout, n_files=6, n_cg=n_cg)
            _, makespan = simulate_write_plan(machine(), plan)
            times[n_cg] = makespan
        assert times[3] < times[1]

    def test_deterministic(self):
        decomp, layout = setup()
        plan = bar_gather_write_plan(decomp, layout, n_files=2, n_cg=1)
        _, a = simulate_write_plan(machine(), plan)
        _, b = simulate_write_plan(machine(), plan)
        assert a == b
