"""End-to-end service acceptance (the ISSUE 7 headline scenario).

Three tenants submit real P-EnKF campaigns onto a two-slot service with
chaos faults on; once the low-priority campaign is mid-flight a
high-priority job arrives and forces a checkpoint-then-release
preemption.  Every job's final checkpointed ensemble must be
bit-identical to a solo :class:`CampaignRunner` run of the same seed —
queueing, preemption and chaos must never change an answer.

This is the slow tier of the service tests (real campaigns, real
threads); the fast, fake-clock policy tests live in
``tests/test_service.py``.
"""

import numpy as np
import pytest

from repro.service import validate_service_report
from repro.service.demo import (
    demo_faults,
    final_ensemble,
    run_acceptance_scenario,
    solo_final_ensemble,
)

N_CYCLES = 5


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-e2e")
    return run_acceptance_scenario(
        root, n_cycles=N_CYCLES, total_slots=2, chaos=True, timeout=300.0,
        exporter_port=0,
    )


class TestAcceptanceScenario:
    def test_every_job_completes(self, scenario):
        states = {name: j["state"] for name, j in scenario["jobs"].items()}
        assert states == {
            "student": "done", "ops": "done",
            "research": "done", "urgent": "done",
        }
        assert len(states) >= 4  # >= 3 tenants + the urgent submission

    def test_priority_preemption_happened(self, scenario):
        assert scenario["preemptions"] >= 1
        # The urgent job itself was never the victim.
        assert scenario["jobs"]["urgent"]["preemptions"] == 0

    def test_results_bit_identical_to_solo_runs(self, scenario):
        assert scenario["identical"] == {
            "student": True, "ops": True, "research": True, "urgent": True,
        }

    def test_progress_reached_final_cycle(self, scenario):
        for name, job in scenario["jobs"].items():
            assert job["progress"] == N_CYCLES, name

    def test_report_validates_and_attributes_tenants(self, scenario):
        payload = scenario["report"].to_dict()
        validate_service_report(payload)
        assert set(payload["tenants"]) == {"ops", "research", "student"}
        for usage in payload["tenants"].values():
            assert usage["actual_slot_seconds"] > 0.0
            assert usage["predicted_slot_seconds"] > 0.0
        # Job-scoped tracers rolled up into per-category phase totals.
        assert payload["phase_totals"].get("cycle", 0.0) > 0.0
        hist = payload["metrics"]["histograms"]
        assert hist["service.queue_wait_seconds"]["count"] >= 4
        assert hist["service.slot_utilization"]["count"] >= 1


class TestLiveHealthPlane:
    """The exporter scraped *while the acceptance jobs ran* (the fixture
    passes ``exporter_port=0``) — the ISSUE 8 live-health acceptance."""

    def test_midrun_exposition_is_well_formed(self, scenario):
        text = scenario["metrics_text"]
        assert text is not None and text.endswith("\n")
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            assert name and value, line
            float(value)  # every sample parses as a number

    def test_midrun_scrape_carries_key_series(self, scenario):
        names = {
            line.split(" ")[0]
            for line in scenario["metrics_text"].splitlines()
            if line and not line.startswith("#")
        }
        for prefix in ("service_", "parallel_", "health_", "cycle_"):
            assert any(n.startswith(prefix) for n in names), prefix
        assert "service_submitted" in names
        assert "health_spread_skill" in names

    def test_midrun_healthz_reports_live_state(self, scenario):
        hz = scenario["healthz"]
        assert hz["status"] == "ok"
        assert hz["uptime_seconds"] > 0.0
        assert hz["total_slots"] == 2
        # Jobs were running at scrape time; each live recorder reports
        # its bounded window.
        assert hz["running"] >= 1
        for window in hz["flight"].values():
            assert window["spans_held"] <= window["capacity"]

    def test_healthy_acceptance_fires_zero_alerts(self, scenario):
        health = scenario["report"].to_dict()["health"]
        assert health["schema"] == "senkf-health/1"
        assert health["alerts"] == []
        assert health["n_evaluations"] > 0
        # Filter probes ran inside every job too, and stayed quiet.
        assert scenario["healthz"]["alerts_active"] == []


class TestPreemptedResumeEquivalence:
    SEEDS = {"student": 303, "ops": 101, "research": 202, "urgent": 404}

    def test_preempted_job_resumed_not_recomputed(self, scenario, tmp_path):
        """The preempted job's directory holds a mid-campaign checkpoint
        trail *and* the final cycle — evidence it resumed from its
        preemption checkpoint rather than restarting — and its answer
        still matches a solo run of the same seed."""
        preempted = [
            name for name, job in scenario["jobs"].items()
            if job["preemptions"] > 0
        ]
        assert preempted, "scenario produced no preempted job"
        name = preempted[0]
        job = scenario["jobs"][name]
        service_dir = (
            scenario["root"] / "service" / job["tenant"]
            / scenario["ids"][name]
        )
        from repro.checkpoint.store import CheckpointStore

        cycles = CheckpointStore(service_dir).cycles()
        assert cycles[-1] == N_CYCLES
        assert len(cycles) > 1  # the preemption checkpoint trail
        solo = solo_final_ensemble(
            self.SEEDS[name], N_CYCLES, tmp_path / "solo-again",
            faults=demo_faults(),
        )
        assert np.array_equal(solo, final_ensemble(service_dir))
