"""Tests for the analysis equations (3), (5) and the local analysis (6).

These are the correctness anchors of the whole repo:
- gain form == precision form when B̂⁻¹ = B⁻¹ (the paper's (3) ⇔ (5)),
- EnKF mean -> Kalman filter mean as N -> ∞,
- local analysis with a full-domain expansion == global analysis,
- domain-decomposed assimilation is independent of the decomposition.
"""

import numpy as np
import pytest

from repro.core import (
    Decomposition,
    Grid,
    ObservationNetwork,
    analysis_gain_form,
    analysis_precision_form,
    local_analysis,
    perturb_observations,
)


def gaussian_setup(n=12, n_members=6, m=5, rng_seed=0, rho=0.7):
    """A linear-Gaussian toy problem with known true B."""
    rng = np.random.default_rng(rng_seed)
    cov = rho ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    chol = np.linalg.cholesky(cov)
    truth = chol @ rng.standard_normal(n)
    # The background mean carries one realisation of N(0, B) error — the
    # statistical situation the Kalman gain with B = cov is built for —
    # and the members spread about it with the same covariance.
    background_mean = truth + chol @ rng.standard_normal(n)
    xb = background_mean[:, None] + chol @ rng.standard_normal((n, n_members))
    h = np.zeros((m, n))
    locations = rng.choice(n, size=m, replace=False)
    h[np.arange(m), locations] = 1.0
    sigma = 0.5
    y = h @ truth + rng.normal(0, sigma, m)
    ys = perturb_observations(y, sigma, n_members, rng=rng)
    r_diag = np.full(m, sigma**2)
    return cov, truth, xb, h, r_diag, y, ys


class TestFormEquivalence:
    def test_gain_equals_precision_with_exact_b(self):
        """Eq. (3) == Eq. (5) when B̂⁻¹ is the true inverse of B."""
        cov, _, xb, h, r_diag, _, ys = gaussian_setup()
        xa_gain = analysis_gain_form(xb, h, r_diag, ys, b_matrix=cov)
        xa_prec = analysis_precision_form(xb, h, r_diag, ys, np.linalg.inv(cov))
        assert np.allclose(xa_gain, xa_prec, atol=1e-8)

    def test_gain_equals_precision_with_sample_b(self):
        """Same equivalence with the (regularised) sample covariance."""
        _, _, xb, h, r_diag, _, ys = gaussian_setup(n=6, n_members=40)
        u = xb - xb.mean(axis=1, keepdims=True)
        b = u @ u.T / (xb.shape[1] - 1) + 1e-8 * np.eye(6)
        xa_gain = analysis_gain_form(xb, h, r_diag, ys, b_matrix=b)
        xa_prec = analysis_precision_form(xb, h, r_diag, ys, np.linalg.inv(b))
        assert np.allclose(xa_gain, xa_prec, atol=1e-6)

    def test_sparse_and_dense_h_agree(self):
        import scipy.sparse as sp

        cov, _, xb, h, r_diag, _, ys = gaussian_setup()
        binv = np.linalg.inv(cov)
        dense = analysis_precision_form(xb, h, r_diag, ys, binv)
        sparse = analysis_precision_form(xb, sp.csr_matrix(h), r_diag, ys, binv)
        assert np.allclose(dense, sparse)

    def test_gain_form_sparse_h_with_explicit_b(self):
        """Regression: sparse H + explicit B used to route B @ Hᵀ through
        ``np.matrix`` (scipy's ``todense``), changing downstream semantics.
        The result must be a plain ndarray and match the dense-H path."""
        import scipy.sparse as sp

        cov, _, xb, h, r_diag, _, ys = gaussian_setup()
        dense = analysis_gain_form(xb, h, r_diag, ys, b_matrix=cov)
        sparse = analysis_gain_form(xb, sp.csr_matrix(h), r_diag, ys,
                                    b_matrix=cov)
        assert type(sparse) is np.ndarray
        assert np.allclose(dense, sparse, atol=1e-10)


class TestAgainstKalmanFilter:
    def kf_mean(self, xb_mean, cov, h, r_diag, y):
        s = h @ cov @ h.T + np.diag(r_diag)
        k = cov @ h.T @ np.linalg.inv(s)
        return xb_mean + k @ (y - h @ xb_mean)

    def test_exact_b_matches_kf_mean(self):
        """With explicit B and centred perturbations, the ensemble-mean
        update is exactly the Kalman update of the background mean."""
        cov, _, xb, h, r_diag, y, _ = gaussian_setup(n_members=8)
        ys = perturb_observations(y, np.sqrt(r_diag[0]), 8, rng=42, center=True)
        xa = analysis_gain_form(xb, h, r_diag, ys, b_matrix=cov)
        want = self.kf_mean(xb.mean(axis=1), cov, h, r_diag, y)
        assert np.allclose(xa.mean(axis=1), want, atol=1e-10)

    def test_large_ensemble_converges_to_kf(self):
        """Sample-covariance EnKF mean -> KF mean as N grows."""
        n, m = 8, 4
        rng = np.random.default_rng(3)
        cov = 0.6 ** np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        chol = np.linalg.cholesky(cov)
        truth = chol @ rng.standard_normal(n)
        h = np.eye(n)[:m]
        sigma = 0.4
        y = h @ truth + rng.normal(0, sigma, m)
        r_diag = np.full(m, sigma**2)

        n_members = 3000
        xb = truth[:, None] + chol @ rng.standard_normal((n, n_members))
        ys = perturb_observations(y, sigma, n_members, rng=rng)
        xa = analysis_gain_form(xb, h, r_diag, ys)
        want = self.kf_mean(xb.mean(axis=1), cov, h, r_diag, y)
        assert np.abs(xa.mean(axis=1) - want).max() < 0.1

    def test_analysis_reduces_error(self):
        # Fully observed with accurate observations: the update must pull
        # the ensemble mean toward the truth.
        cov, truth, xb, h, r_diag, y, ys = gaussian_setup(
            n=12, n_members=30, m=12, rng_seed=5
        )
        xa = analysis_gain_form(xb, h, r_diag, ys, b_matrix=cov)
        err_b = np.linalg.norm(xb.mean(axis=1) - truth)
        err_a = np.linalg.norm(xa.mean(axis=1) - truth)
        assert err_a < err_b

    def test_analysis_pulls_toward_observations(self):
        cov, _, xb, h, r_diag, y, ys = gaussian_setup(rng_seed=7)
        xa = analysis_gain_form(xb, h, r_diag, ys, b_matrix=cov)
        dist_b = np.linalg.norm(h @ xb.mean(axis=1) - y)
        dist_a = np.linalg.norm(h @ xa.mean(axis=1) - y)
        assert dist_a < dist_b


class TestValidation:
    def test_gain_rejects_1d_background(self):
        with pytest.raises(ValueError):
            analysis_gain_form(np.zeros(5), np.eye(5), np.ones(5), np.zeros((5, 1)))

    def test_gain_rejects_single_member_sample(self):
        with pytest.raises(ValueError):
            analysis_gain_form(
                np.zeros((5, 1)), np.eye(5), np.ones(5), np.zeros((5, 1))
            )

    def test_innovation_shape_mismatch(self):
        with pytest.raises(ValueError):
            analysis_gain_form(
                np.zeros((5, 3)), np.eye(5), np.ones(5), np.zeros((4, 3)),
                b_matrix=np.eye(5),
            )

    def test_precision_rejects_bad_binv_shape(self):
        with pytest.raises(ValueError):
            analysis_precision_form(
                np.zeros((5, 3)), np.eye(5), np.ones(5), np.zeros((5, 3)),
                b_inverse=np.eye(4),
            )


class TestLocalAnalysis:
    def setup_problem(self, n_x=16, n_y=8, n_members=10, m=30, seed=0):
        grid = Grid(n_x=n_x, n_y=n_y, dx_km=1.0, dy_km=1.0)
        rng = np.random.default_rng(seed)
        # Smooth correlated background ensemble via random Fourier modes.
        xb = np.zeros((grid.n, n_members))
        xs, ys_ = np.meshgrid(np.arange(n_x), np.arange(n_y))
        for k in range(n_members):
            field = np.zeros((n_y, n_x))
            for _ in range(4):
                kx, ky = rng.integers(1, 3, size=2)
                phase = rng.uniform(0, 2 * np.pi, size=2)
                field += rng.normal() * np.cos(
                    2 * np.pi * kx * xs / n_x + phase[0]
                ) * np.cos(np.pi * ky * ys_ / n_y + phase[1])
            xb[:, k] = field.ravel()
        net = ObservationNetwork.random(grid, m=m, obs_error_std=0.3, rng=rng)
        truth = xb.mean(axis=1) + rng.normal(0, 0.5, grid.n)
        y = net.observe(truth, rng=rng)
        ys = perturb_observations(y, net.obs_error_std, n_members, rng=rng)
        return grid, xb, net, ys, truth

    def test_full_domain_expansion_equals_global_precision_form(self):
        """A 1x1 'decomposition' must reproduce the global Eq. (5)."""
        grid, xb, net, ys, _ = self.setup_problem()
        from repro.core.cholesky import modified_cholesky_inverse

        decomp = Decomposition(grid, n_sdx=1, n_sdy=1, xi=0, eta=0)
        sd = decomp.subdomain(0, 0)
        radius = 3.0

        # Global precision-form analysis with the same B̂⁻¹.
        ix, iy = sd.expansion_coords
        binv = modified_cholesky_inverse(xb, grid, ix, iy, radius_km=radius)
        r_diag = np.full(net.m, net.obs_error_std**2)
        xa_global = analysis_precision_form(xb, net.operator, r_diag, ys, binv)

        xa_local = local_analysis(sd, xb[sd.expansion_flat], net, ys, radius)
        order = np.argsort(sd.interior_flat)
        assert np.allclose(xa_local[order], xa_global[np.sort(sd.interior_flat)])

    @pytest.mark.parametrize("decomp_shape", [(2, 2), (4, 2), (2, 4)])
    def test_decomposition_invariance_diagonal_precision(self, decomp_shape):
        """With a radius below the grid spacing the modified-Cholesky
        estimate is diagonal and (with a selection H) the update decouples
        pointwise — so the assembled analysis must be *exactly* independent
        of the decomposition."""
        grid, xb, net, ys, _ = self.setup_problem()
        radius = 0.5  # < dx: no conditional predecessors anywhere
        n_sdx, n_sdy = decomp_shape

        results = []
        for shape in [(n_sdx, n_sdy), (1, 1)]:
            decomp = Decomposition(grid, n_sdx=shape[0], n_sdy=shape[1], xi=2, eta=2)
            xa = np.empty_like(xb)
            for sd in decomp:
                xa[sd.interior_flat] = local_analysis(
                    sd, xb[sd.expansion_flat], net, ys, radius
                )
            results.append(xa)
        assert np.allclose(results[0], results[1], atol=1e-9)

    @pytest.mark.parametrize("decomp_shape", [(2, 2), (4, 2)])
    def test_decomposition_consistency_approximate(self, decomp_shape):
        """With a real localization radius, per-expansion modified-Cholesky
        estimates differ near expansion borders (different conditioning
        orders), so decompositions are *statistically* consistent rather
        than bitwise equal: the increments must correlate strongly with the
        global (1x1) analysis increments."""
        grid, xb, net, ys, _ = self.setup_problem()
        radius = 2.0

        increments = []
        for shape in [decomp_shape, (1, 1)]:
            decomp = Decomposition(grid, n_sdx=shape[0], n_sdy=shape[1], xi=4, eta=4)
            xa = np.empty_like(xb)
            for sd in decomp:
                xa[sd.interior_flat] = local_analysis(
                    sd, xb[sd.expansion_flat], net, ys, radius
                )
            increments.append((xa - xb).ravel())
        corr = np.corrcoef(increments[0], increments[1])[0, 1]
        assert corr > 0.85

    def test_local_analysis_no_observations_returns_background(self):
        grid, xb, _, _, _ = self.setup_problem()
        # A network observing only the far corner.
        net = ObservationNetwork(grid, ix=[15], iy=[7], obs_error_std=0.3)
        ys = perturb_observations(np.zeros(1), 0.3, xb.shape[1], rng=0)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=1, eta=1)
        sd = decomp.subdomain(0, 0)  # far from the observation
        xa = local_analysis(sd, xb[sd.expansion_flat], net, ys, radius_km=2.0)
        assert np.allclose(xa, xb[sd.interior_flat])

    def test_local_analysis_reduces_error_at_observed_points(self):
        grid, xb, net, ys, truth = self.setup_problem(m=60, seed=4)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=3, eta=3)
        xa = np.empty_like(xb)
        for sd in decomp:
            xa[sd.interior_flat] = local_analysis(
                sd, xb[sd.expansion_flat], net, ys, radius_km=2.0
            )
        obs_idx = net.flat_locations
        err_b = np.linalg.norm(xb.mean(axis=1)[obs_idx] - truth[obs_idx])
        err_a = np.linalg.norm(xa.mean(axis=1)[obs_idx] - truth[obs_idx])
        assert err_a < err_b

    def test_local_analysis_wrong_expansion_shape_rejected(self):
        grid, xb, net, ys, _ = self.setup_problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        sd = decomp.subdomain(0, 0)
        with pytest.raises(ValueError):
            local_analysis(sd, xb[:5], net, ys, radius_km=2.0)


class TestSparseSolverPath:
    def test_sparse_binv_matches_dense_precision_form(self):
        import scipy.sparse as spmod

        cov, _, xb, h, r_diag, _, ys = gaussian_setup()
        binv = np.linalg.inv(cov)
        dense = analysis_precision_form(xb, spmod.csr_matrix(h), r_diag, ys,
                                        binv)
        sparse = analysis_precision_form(
            xb, spmod.csr_matrix(h), r_diag, ys, spmod.csr_matrix(binv)
        )
        assert np.allclose(dense, sparse, atol=1e-8)

    def test_sparse_binv_with_dense_h(self):
        import scipy.sparse as spmod

        cov, _, xb, h, r_diag, _, ys = gaussian_setup()
        binv = np.linalg.inv(cov)
        dense = analysis_precision_form(xb, h, r_diag, ys, binv)
        sparse_b = analysis_precision_form(xb, h, r_diag, ys,
                                           spmod.csr_matrix(binv))
        assert np.allclose(dense, sparse_b, atol=1e-8)

    def test_local_analysis_sparse_solver_matches_dense(self):
        helper = TestLocalAnalysis()
        grid, xb, net, ys, _ = helper.setup_problem()
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=3, eta=3)
        sd = decomp.subdomain(1, 0)
        dense = local_analysis(sd, xb[sd.expansion_flat], net, ys,
                               radius_km=2.0)
        sparse = local_analysis(sd, xb[sd.expansion_flat], net, ys,
                                radius_km=2.0, sparse_solver=True)
        assert np.allclose(dense, sparse, atol=1e-8)

    def test_sparse_cholesky_is_actually_sparse(self):
        import scipy.sparse as spmod

        from repro.core.cholesky import modified_cholesky_inverse

        grid = Grid(n_x=30, n_y=1, periodic_x=False)
        rng = np.random.default_rng(0)
        states = rng.normal(size=(30, 10))
        binv = modified_cholesky_inverse(
            states, grid, np.arange(30), np.zeros(30, dtype=int),
            radius_km=2.0, sparse=True,
        )
        assert spmod.issparse(binv)
        # Banded: far fewer nonzeros than a dense matrix.
        assert binv.nnz < 0.5 * 30 * 30
        dense = modified_cholesky_inverse(
            states, grid, np.arange(30), np.zeros(30, dtype=int),
            radius_km=2.0, sparse=False,
        )
        assert np.allclose(np.asarray(binv.todense()), dense)
