"""Unit tests for the service core (``repro.service``).

The queue, quota ledger and scheduler are synchronous and clock-injected,
so every policy decision here is asserted deterministically against a
fake clock — no sleeps, no event loop.  The asyncio layer is exercised
with tiny synthetic payloads through :class:`ServiceClient` (events, not
timers, gate the concurrency).
"""

import threading

import pytest

from repro.costmodel.model import CostParams
from repro.faults import FaultSchedule
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    PREEMPTING,
    RUNNING,
    AdmissionError,
    AssimilationService,
    CostEstimate,
    JobCancelled,
    JobControl,
    JobPreempted,
    JobQueue,
    JobSpec,
    QuotaExceededError,
    QuotaLedger,
    Scheduler,
    ServiceClient,
    ServiceReport,
    TenantQuota,
    UnknownJobError,
    render_service_report,
    service_read_inflation,
    validate_service_report,
)
from repro.telemetry import render_histograms


class FakeClock:
    """Deterministic monotonic clock for queue/scheduler tests."""

    def __init__(self, t: float = 0.0):
        self.t = float(t)

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def spec(tenant="a", *, payload=None, **kwargs) -> JobSpec:
    return JobSpec(
        tenant=tenant, payload=payload or (lambda control: None), **kwargs
    )


def demo_cost(n_cycles=1, **kwargs) -> CostEstimate:
    params = CostParams(
        n_x=16, n_y=8, n_members=8, h=8.0, xi=2, eta=1,
        a=1e-4, b=1e-8, c=1e-6, theta=1e-8,
    )
    return CostEstimate(
        params=params, n_sdx=2, n_sdy=2, n_layers=1, n_cg=1,
        n_cycles=n_cycles, **kwargs,
    )


# -- cost estimates and fault-aware pricing -----------------------------------

class TestCostEstimate:
    def test_scales_with_cycles(self):
        one = demo_cost(1).seconds()
        ten = demo_cost(10).seconds()
        assert ten == pytest.approx(10 * one)

    def test_read_inflation_raises_price(self):
        assert demo_cost().seconds(read_inflation=3.0) > demo_cost().seconds()

    def test_read_inflation_below_one_rejected(self):
        with pytest.raises(ValueError, match="read_inflation"):
            demo_cost().seconds(read_inflation=0.5)

    def test_bad_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            demo_cost(objective="fastest")

    def test_paper_objective_at_least_pipelined(self):
        assert demo_cost(objective="paper").seconds() >= demo_cost().seconds()

    def test_service_read_inflation_clean(self):
        assert service_read_inflation(None) == 1.0
        assert service_read_inflation(FaultSchedule(1)) == 1.0

    def test_service_read_inflation_member_faults(self):
        faults = FaultSchedule(
            1, member_fault_rate=0.5, member_fault_attempts=2
        )
        assert service_read_inflation(faults) == pytest.approx(2.0)

    def test_fault_aware_admission_price(self):
        scheduler = Scheduler(2)
        clean = scheduler.predict_seconds(spec(cost=demo_cost(4)))
        chaotic = scheduler.predict_seconds(spec(
            cost=demo_cost(4),
            faults=FaultSchedule(1, member_fault_rate=0.5),
        ))
        assert chaotic > clean

    def test_default_prediction_without_cost(self):
        scheduler = Scheduler(2, default_seconds=7.5)
        assert scheduler.predict_seconds(spec()) == 7.5


# -- the job state machine ----------------------------------------------------

class TestJobQueue:
    def test_submit_assigns_sequential_ids(self):
        queue = JobQueue(FakeClock())
        ids = [queue.submit(spec(), 1.0).job_id for _ in range(3)]
        assert ids == ["job-00000", "job-00001", "job-00002"]

    def test_unknown_job_id(self):
        queue = JobQueue(FakeClock())
        with pytest.raises(UnknownJobError, match="nope"):
            queue.get("nope")

    def test_queue_wait_accumulates_across_attempts(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        job = queue.submit(spec(), 1.0)
        clock.advance(2.0)
        queue.mark_running(job)
        assert job.queue_wait_seconds == pytest.approx(2.0)
        clock.advance(1.0)
        queue.requeue(job, preempted=True)
        clock.advance(3.0)
        queue.mark_running(job)
        assert job.queue_wait_seconds == pytest.approx(5.0)
        assert job.preemptions == 1

    def test_slot_seconds_accumulate_with_slots(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        job = queue.submit(spec(slots=2), 1.0)
        queue.mark_running(job)
        clock.advance(4.0)
        queue.requeue(job, preempted=False)
        assert job.restarts == 1
        queue.mark_running(job)
        clock.advance(1.0)
        queue.finish(job, DONE, value=42)
        assert job.slot_seconds == pytest.approx(2 * 4.0 + 2 * 1.0)
        assert job.value == 42
        assert job.finished

    def test_preempting_jobs_still_hold_slots(self):
        queue = JobQueue(FakeClock())
        job = queue.submit(spec(slots=2), 1.0)
        queue.mark_running(job)
        queue.mark_preempting(job)
        assert job.state == PREEMPTING
        assert job.control.preempt_requested()
        assert queue.busy_slots() == 2
        assert queue.pending() == []

    def test_requeue_clears_preempt_request(self):
        queue = JobQueue(FakeClock())
        job = queue.submit(spec(), 1.0)
        queue.mark_running(job)
        queue.mark_preempting(job)
        queue.requeue(job, preempted=True)
        assert job.state == PENDING
        assert not job.control.preempt_requested()

    def test_pending_job_can_be_cancelled_without_running(self):
        queue = JobQueue(FakeClock())
        job = queue.submit(spec(), 1.0)
        queue.finish(job, CANCELLED, error="cancelled while pending")
        assert job.state == CANCELLED
        assert job.slot_seconds == 0.0

    def test_invalid_transition_rejected(self):
        queue = JobQueue(FakeClock())
        job = queue.submit(spec(), 1.0)
        with pytest.raises(RuntimeError, match="expected"):
            queue.requeue(job, preempted=True)

    def test_finish_requires_terminal_state(self):
        queue = JobQueue(FakeClock())
        job = queue.submit(spec(), 1.0)
        with pytest.raises(ValueError, match="terminal"):
            queue.finish(job, RUNNING)


class TestJobControl:
    def test_cancel_wins_over_preempt(self):
        control = JobControl("job-0", "a")
        control.request_preempt()
        control.request_cancel()
        with pytest.raises(JobCancelled):
            control.checkpoint_point()

    def test_preempt_raises_at_checkpoint_point(self):
        control = JobControl("job-0", "a")
        control.request_preempt()
        with pytest.raises(JobPreempted):
            control.checkpoint_point()
        control.clear_preempt()
        control.checkpoint_point()  # no request pending: passes


# -- quotas and fair share ----------------------------------------------------

class TestQuotaLedger:
    def test_max_pending_enforced(self):
        ledger = QuotaLedger({"a": TenantQuota(max_pending=1)})
        ledger.check_submit("a", 1.0, pending_count=0)
        with pytest.raises(QuotaExceededError, match="pending"):
            ledger.check_submit("a", 1.0, pending_count=1)

    def test_budget_counts_usage_and_inflight(self):
        ledger = QuotaLedger({"a": TenantQuota(slot_seconds_budget=10.0)})
        ledger.charge("a", 6.0)
        ledger.admit("a", 3.0)
        ledger.check_submit("a", 1.0, 0)  # 6 + 3 + 1 == 10: admitted
        with pytest.raises(QuotaExceededError, match="budget"):
            ledger.check_submit("a", 1.5, 0)

    def test_settle_moves_prediction_to_charge(self):
        ledger = QuotaLedger()
        ledger.admit("a", 5.0)
        assert ledger.share_score("a") == pytest.approx(5.0)
        ledger.settle("a", 5.0, 2.0)
        assert ledger.admitted["a"] == 0.0
        assert ledger.usage["a"] == pytest.approx(2.0)

    def test_weight_divides_share(self):
        ledger = QuotaLedger({"heavy": TenantQuota(weight=4.0)})
        ledger.charge("heavy", 8.0)
        ledger.charge("light", 4.0)
        assert ledger.share_score("heavy") < ledger.share_score("light")

    def test_max_running_slots(self):
        ledger = QuotaLedger({"a": TenantQuota(max_running_slots=2)})
        assert ledger.allows_start("a", 2, tenant_running_slots=0)
        assert not ledger.allows_start("a", 1, tenant_running_slots=2)
        assert ledger.allows_start("b", 99, tenant_running_slots=0)


# -- scheduling policy --------------------------------------------------------

def _pending(queue, *specs, predicted=1.0):
    return [queue.submit(s, predicted) for s in specs]


class TestScheduler:
    def test_priority_orders_first(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        low, high = _pending(queue, spec(priority=0), spec(priority=5))
        scheduler = Scheduler(2)
        assert scheduler.ordered_pending([low, high], clock()) == [high, low]

    def test_fair_share_orders_within_priority(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        hog, newcomer = _pending(queue, spec("hog"), spec("new"))
        scheduler = Scheduler(2)
        scheduler.ledger.charge("hog", 100.0)
        assert scheduler.ordered_pending([hog, newcomer], clock()) == [
            newcomer, hog,
        ]

    def test_aging_eventually_outranks_usage(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        old = queue.submit(spec("hog"), 1.0)
        scheduler = Scheduler(2, aging_rate=0.05)
        scheduler.ledger.charge("hog", 10.0)
        clock.advance(500.0)  # 500s * 0.05 = 25 slot-seconds of credit
        fresh = queue.submit(spec("new"), 1.0)
        assert scheduler.ordered_pending([fresh, old], clock()) == [old, fresh]

    def test_shortest_job_breaks_ties(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        slow = queue.submit(spec(), 9.0)
        fast = queue.submit(spec(), 2.0)
        scheduler = Scheduler(2)
        assert scheduler.ordered_pending([slow, fast], clock()) == [fast, slow]

    def test_plan_packs_up_to_free_slots(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        jobs = _pending(queue, spec(slots=1), spec(slots=1), spec(slots=1))
        plan = Scheduler(2).plan(jobs, [], free_slots=2, now=clock())
        assert len(plan.place) == 2
        assert plan.preempt == []

    def test_plan_respects_tenant_running_cap(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        a1, a2, b1 = _pending(
            queue, spec("a"), spec("a"), spec("b"),
        )
        scheduler = Scheduler(
            3, QuotaLedger({"a": TenantQuota(max_running_slots=1)})
        )
        plan = scheduler.plan([a1, a2, b1], [], free_slots=3, now=clock())
        assert a1 in plan.place and b1 in plan.place and a2 not in plan.place

    def test_preempts_lower_priority_when_full(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        victim = queue.submit(spec("bg", priority=0), 1.0)
        queue.mark_running(victim)
        urgent = queue.submit(spec("ops", priority=5), 1.0)
        plan = Scheduler(1).plan([urgent], [victim], free_slots=0, now=clock())
        assert plan.place == []
        assert plan.preempt == [victim]

    def test_never_preempts_equal_or_higher_priority(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        running = queue.submit(spec("bg", priority=5), 1.0)
        queue.mark_running(running)
        pending = queue.submit(spec("ops", priority=5), 1.0)
        plan = Scheduler(1).plan(
            [pending], [running], free_slots=0, now=clock()
        )
        assert plan.empty

    def test_youngest_victim_chosen_first(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        older = queue.submit(spec("bg"), 1.0)
        queue.mark_running(older)
        clock.advance(5.0)
        younger = queue.submit(spec("bg"), 1.0)
        queue.mark_running(younger)
        urgent = queue.submit(spec("ops", priority=1), 1.0)
        plan = Scheduler(2).plan(
            [urgent], [older, younger], free_slots=0, now=clock()
        )
        assert plan.preempt == [younger]

    def test_no_partial_preemption_when_demand_uncoverable(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        small = queue.submit(spec("bg", slots=1), 1.0)
        queue.mark_running(small)
        wide = queue.submit(spec("ops", priority=5, slots=3), 1.0)
        plan = Scheduler(3).plan([wide], [small], free_slots=0, now=clock())
        assert plan.empty  # 1 releasable + 0 free < 3 demanded: nobody dies

    def test_preempting_jobs_are_not_revictimised(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        victim = queue.submit(spec("bg"), 1.0)
        queue.mark_running(victim)
        queue.mark_preempting(victim)
        urgent = queue.submit(spec("ops", priority=5), 1.0)
        plan = Scheduler(1).plan([urgent], [victim], free_slots=0, now=clock())
        assert plan.empty  # already asked; wait for the slots to free

    def test_backfill_continues_past_blocked_job(self):
        clock = FakeClock()
        queue = JobQueue(clock)
        wide = queue.submit(spec("a", slots=2), 1.0)
        narrow = queue.submit(spec("b", slots=1), 5.0)
        plan = Scheduler(2).plan([wide, narrow], [], free_slots=1, now=clock())
        assert plan.place == [narrow]


# -- the service report -------------------------------------------------------

class TestServiceReport:
    def payload(self):
        return ServiceReport(
            total_slots=2,
            wall_seconds=1.5,
            jobs=[{"job_id": "job-00000", "state": DONE}],
            tenants={
                "a": {
                    "submitted": 1, "done": 1, "failed": 0, "cancelled": 0,
                    "preemptions": 0, "restarts": 0,
                    "predicted_slot_seconds": 1.0,
                    "actual_slot_seconds": 1.2,
                    "queue_wait_seconds": 0.1,
                }
            },
        ).to_dict()

    def test_roundtrip_validates(self):
        payload = self.payload()
        assert validate_service_report(payload) is payload
        report = ServiceReport.from_dict(payload)
        assert report.total_slots == 2

    def test_all_violations_reported_at_once(self):
        payload = self.payload()
        payload["total_slots"] = -1
        payload["wall_seconds"] = -2.0
        payload["tenants"]["a"]["done"] = -5
        with pytest.raises(ValueError) as err:
            validate_service_report(payload)
        message = str(err.value)
        assert "total_slots" in message
        assert "wall_seconds" in message
        assert "done" in message

    def test_unknown_schema_rejected(self):
        payload = self.payload()
        payload["schema"] = "senkf-service-report/99"
        with pytest.raises(ValueError, match="schema"):
            validate_service_report(payload)

    def test_write_refuses_invalid(self, tmp_path):
        report = ServiceReport(total_slots=-3)
        with pytest.raises(ValueError):
            report.write(tmp_path / "report.json")
        assert not (tmp_path / "report.json").exists()

    def test_render_lists_tenants(self):
        text = render_service_report(self.payload())
        assert "a" in text and "2 slot(s)" in text


class TestRenderHistograms:
    def snapshot(self):
        from repro.telemetry import MetricsRegistry

        metrics = MetricsRegistry()
        hist = metrics.histogram("service.queue_wait_seconds", (0.1, 1.0))
        for v in (0.05, 0.2, 0.5, 2.0):
            hist.observe(v)
        metrics.histogram("empty.series", (1.0,))
        return metrics.snapshot()

    def test_rows_have_percentiles(self):
        text = render_histograms(self.snapshot())
        assert "service.queue_wait_seconds" in text
        assert "p50" in text and "p99" in text
        assert "4" in text  # the count

    def test_empty_histogram_renders_dashes(self):
        text = render_histograms(self.snapshot())
        assert "empty.series" in text and "-" in text

    def test_names_filter_and_order(self):
        text = render_histograms(
            self.snapshot(), names=["service.queue_wait_seconds"]
        )
        assert "empty.series" not in text

    def test_no_histograms(self):
        assert "no histograms" in render_histograms({})


# -- the asyncio service with synthetic payloads ------------------------------

def gated_payload(started: threading.Event, release: threading.Event,
                  value="ok"):
    """A payload that parks at a checkpoint boundary until released —
    the synthetic stand-in for a long campaign (events, not sleeps)."""

    def payload(control):
        started.set()
        while not release.wait(0.005):
            control.checkpoint_point()
        control.checkpoint_point()
        return value

    return payload


class TestAssimilationService:
    def test_submit_run_result(self):
        with ServiceClient(total_slots=1) as client:
            job_id = client.submit(spec(payload=lambda control: 7))
            assert client.result(job_id, timeout=30) == 7
            assert client.status(job_id)["state"] == DONE

    def test_oversized_job_rejected_at_admission(self):
        with ServiceClient(total_slots=1) as client:
            with pytest.raises(AdmissionError, match="slot"):
                client.submit(spec(slots=2))

    def test_quota_rejection_at_submit(self):
        quotas = {"a": TenantQuota(max_pending=1)}
        started, release = threading.Event(), threading.Event()
        with ServiceClient(total_slots=1, quotas=quotas) as client:
            running = client.submit(spec(payload=gated_payload(started, release)))
            assert started.wait(30)
            waiting = client.submit(spec())  # pending #1: fine
            with pytest.raises(QuotaExceededError):
                client.submit(spec())  # pending #2: over max_pending
            release.set()
            client.result(running, timeout=30)
            client.result(waiting, timeout=30)

    def test_cancel_pending_job(self):
        started, release = threading.Event(), threading.Event()
        with ServiceClient(total_slots=1) as client:
            blocker = client.submit(spec(payload=gated_payload(started, release)))
            assert started.wait(30)
            queued = client.submit(spec())
            client.cancel(queued)
            with pytest.raises(JobCancelled):
                client.result(queued, timeout=30)
            release.set()
            client.result(blocker, timeout=30)

    def test_cancel_running_job_drains_gracefully(self):
        started, release = threading.Event(), threading.Event()
        with ServiceClient(total_slots=1) as client:
            job_id = client.submit(spec(payload=gated_payload(started, release)))
            assert started.wait(30)
            client.cancel(job_id)
            with pytest.raises(JobCancelled):
                client.result(job_id, timeout=30)
            assert client.status(job_id)["state"] == CANCELLED

    def test_restartable_crash_requeues_then_succeeds(self):
        attempts = []

        def flaky(control):
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("transient disk trouble")
            return "recovered"

        with ServiceClient(total_slots=1) as client:
            job_id = client.submit(spec(payload=flaky, max_restarts=2))
            assert client.result(job_id, timeout=30) == "recovered"
            assert client.status(job_id)["restarts"] == 1

    def test_restart_budget_exhaustion_fails_job(self):
        def always_down(control):
            raise OSError("dead disk")

        with ServiceClient(total_slots=1) as client:
            job_id = client.submit(spec(payload=always_down, max_restarts=1))
            with pytest.raises(RuntimeError, match="restart budget"):
                client.result(job_id, timeout=30)
            assert client.status(job_id)["restarts"] == 1
            assert client.status(job_id)["state"] == FAILED

    def test_programming_errors_fail_without_restart(self):
        def broken(control):
            raise ValueError("bad maths")

        with ServiceClient(total_slots=1) as client:
            job_id = client.submit(spec(payload=broken, max_restarts=5))
            with pytest.raises(RuntimeError, match="bad maths"):
                client.result(job_id, timeout=30)
            assert client.status(job_id)["restarts"] == 0

    def test_high_priority_preempts_and_both_finish(self):
        started, release = threading.Event(), threading.Event()
        with ServiceClient(total_slots=1) as client:
            low = client.submit(spec(
                "bg", payload=gated_payload(started, release, value="low"),
            ))
            assert started.wait(30)
            urgent = client.submit(spec(
                "ops", payload=lambda control: "urgent", priority=5,
            ))
            assert client.result(urgent, timeout=30) == "urgent"
            release.set()
            assert client.result(low, timeout=30) == "low"
            status = client.status(low)
            assert status["preemptions"] == 1
            assert status["state"] == DONE

    def test_report_rolls_up_tenants_and_metrics(self):
        with ServiceClient(total_slots=2) as client:
            for _ in range(2):
                client.submit(spec("a", payload=lambda control: 1))
            client.submit(spec("b", payload=lambda control: 2))
            client.drain(timeout=30)
            report = client.report(notes=["unit"])
        payload = report.to_dict()
        validate_service_report(payload)
        assert payload["tenants"]["a"]["submitted"] == 2
        assert payload["tenants"]["b"]["done"] == 1
        assert "service.queue_wait_seconds" in payload["metrics"]["histograms"]
        assert "unit" in payload["notes"]
        assert "tenant" in render_service_report(payload)

    def test_job_snapshots_visible_from_any_thread(self):
        with ServiceClient(total_slots=1) as client:
            client.submit(spec(name="first"))
            client.drain(timeout=30)
            names = [j["name"] for j in client.jobs()]
        assert names == ["first"]
