"""Suite-wide fixtures: the shared-memory leak sentinel.

Every ``SharedEnsemble`` registers its segment with the process-wide
:class:`~repro.telemetry.memprof.SharedSegmentRegistry`; the autouse
fixture below diffs that registry around every test and fails any test
that leaves a senkf segment mapped.  ``__del__`` disposal is counted as
*gc-reclaimed* (the segment outlived its run), which the sentinel
tolerates but the registry reports — a test only fails when a segment
is still live, i.e. neither ``dispose()`` nor the garbage collector
ever released it.
"""

import gc

import pytest

from repro.telemetry.memprof import shared_segment_registry


@pytest.fixture(autouse=True)
def shm_leak_sentinel():
    """Fail any test that leaves a live senkf shared-memory segment."""
    registry = shared_segment_registry()
    live_before = set(registry.live_segments())
    yield
    # Let dropped-on-the-floor ensembles run their finalizers first:
    # __del__ disposal is legal (the registry books it as gc-reclaimed),
    # a segment that survives collection is a leak.
    gc.collect()
    leaked = [
        (seg, nbytes)
        for seg, nbytes in registry.live_segments().items()
        if seg not in live_before
    ]
    if leaked:
        for seg, _ in leaked:
            registry.record_dispose(seg)
        detail = ", ".join(f"{seg} ({nbytes} B)" for seg, nbytes in leaked)
        pytest.fail(
            f"test leaked {len(leaked)} shared-memory segment(s): {detail}"
        )
