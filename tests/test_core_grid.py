"""Tests for Grid and index conventions."""

import numpy as np
import pytest

from repro.core import Grid


class TestGridBasics:
    def test_n_and_shape(self):
        g = Grid(n_x=10, n_y=4)
        assert g.n == 40
        assert g.shape == (4, 10)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Grid(n_x=0, n_y=4)
        with pytest.raises(ValueError):
            Grid(n_x=4, n_y=-1)

    def test_flat_index_latitude_major(self):
        g = Grid(n_x=10, n_y=4)
        assert g.flat_index(0, 0) == 0
        assert g.flat_index(9, 0) == 9
        assert g.flat_index(0, 1) == 10
        assert g.flat_index(3, 2) == 23

    def test_flat_index_vectorised(self):
        g = Grid(n_x=10, n_y=4)
        out = g.flat_index(np.array([0, 3]), np.array([1, 2]))
        assert list(out) == [10, 23]

    def test_flat_index_out_of_range(self):
        g = Grid(n_x=10, n_y=4)
        with pytest.raises(ValueError):
            g.flat_index(10, 0)
        with pytest.raises(ValueError):
            g.flat_index(0, 4)

    def test_coords_roundtrip(self):
        g = Grid(n_x=7, n_y=5)
        flats = np.arange(g.n)
        ix, iy = g.coords(flats)
        assert np.array_equal(g.flat_index(ix, iy), flats)

    def test_coords_out_of_range(self):
        g = Grid(n_x=7, n_y=5)
        with pytest.raises(ValueError):
            g.coords(g.n)


class TestWrapClamp:
    def test_wrap_x_periodic(self):
        g = Grid(n_x=10, n_y=4, periodic_x=True)
        assert g.wrap_x(-1) == 9
        assert g.wrap_x(10) == 0
        assert g.wrap_x(23) == 3

    def test_wrap_x_nonperiodic_rejects(self):
        g = Grid(n_x=10, n_y=4, periodic_x=False)
        with pytest.raises(ValueError):
            g.wrap_x(-1)

    def test_clamp_y(self):
        g = Grid(n_x=10, n_y=4)
        assert g.clamp_y(-3) == 0
        assert g.clamp_y(7) == 3
        assert g.clamp_y(2) == 2


class TestGeometry:
    def test_distance_simple(self):
        g = Grid(n_x=100, n_y=50, dx_km=2.0, dy_km=3.0, periodic_x=False)
        assert g.distance_km(0, 0, 3, 4) == pytest.approx(np.hypot(6.0, 12.0))

    def test_distance_periodic_wrap(self):
        g = Grid(n_x=100, n_y=50, dx_km=1.0, dy_km=1.0, periodic_x=True)
        # 99 -> 0 is one step around the seam, not 99 steps.
        assert g.distance_km(99, 0, 0, 0) == pytest.approx(1.0)

    def test_distance_symmetric(self):
        g = Grid(n_x=40, n_y=20, dx_km=2.5, dy_km=5.0)
        assert g.distance_km(1, 2, 30, 15) == pytest.approx(
            g.distance_km(30, 15, 1, 2)
        )


class TestFieldReshape:
    def test_roundtrip(self):
        g = Grid(n_x=6, n_y=3)
        state = np.arange(18.0)
        field = g.as_field(state)
        assert field.shape == (3, 6)
        assert field[1, 0] == 6.0  # row 1 starts at flat index 6
        assert np.array_equal(g.as_state(field), state)

    def test_ensemble_roundtrip(self):
        g = Grid(n_x=6, n_y=3)
        ens = np.arange(36.0).reshape(18, 2)
        field = g.as_field(ens)
        assert field.shape == (3, 6, 2)
        assert np.array_equal(g.as_state(field), ens)

    def test_wrong_sizes_rejected(self):
        g = Grid(n_x=6, n_y=3)
        with pytest.raises(ValueError):
            g.as_field(np.zeros(17))
        with pytest.raises(ValueError):
            g.as_state(np.zeros((6, 3)))
