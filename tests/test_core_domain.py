"""Tests for the domain decomposition and expansions."""

import numpy as np
import pytest

from repro.core import Decomposition, Grid


def make_decomp(n_x=24, n_y=12, n_sdx=4, n_sdy=3, xi=2, eta=1, periodic=True):
    grid = Grid(n_x=n_x, n_y=n_y, periodic_x=periodic)
    return Decomposition(grid, n_sdx=n_sdx, n_sdy=n_sdy, xi=xi, eta=eta)


class TestDecompositionBasics:
    def test_block_sizes(self):
        d = make_decomp()
        assert d.block_cols == 6
        assert d.block_rows == 4
        assert d.points_per_subdomain == 24
        assert d.n_subdomains == 12

    def test_divisibility_enforced(self):
        grid = Grid(n_x=24, n_y=12)
        with pytest.raises(ValueError):
            Decomposition(grid, n_sdx=5, n_sdy=3, xi=1, eta=1)
        with pytest.raises(ValueError):
            Decomposition(grid, n_sdx=4, n_sdy=5, xi=1, eta=1)

    def test_negative_halo_rejected(self):
        grid = Grid(n_x=24, n_y=12)
        with pytest.raises(ValueError):
            Decomposition(grid, n_sdx=4, n_sdy=3, xi=-1, eta=0)

    def test_interiors_partition_the_mesh(self):
        d = make_decomp()
        seen = np.concatenate([sd.interior_flat for sd in d])
        assert len(seen) == d.grid.n
        assert np.array_equal(np.sort(seen), np.arange(d.grid.n))

    def test_subdomain_cached(self):
        d = make_decomp()
        assert d.subdomain(1, 2) is d.subdomain(1, 2)

    def test_subdomain_bad_index(self):
        d = make_decomp()
        with pytest.raises(ValueError):
            d.subdomain(4, 0)
        with pytest.raises(ValueError):
            d.subdomain(0, 3)


class TestRankMapping:
    def test_rank_of_latitude_band_major(self):
        d = make_decomp()
        assert d.rank_of(0, 0) == 0
        assert d.rank_of(3, 0) == 3
        assert d.rank_of(0, 1) == 4
        assert d.rank_of(2, 2) == 10

    def test_ij_roundtrip(self):
        d = make_decomp()
        for rank in range(d.n_subdomains):
            i, j = d.ij_of(rank)
            assert d.rank_of(i, j) == rank

    def test_ij_out_of_range(self):
        d = make_decomp()
        with pytest.raises(ValueError):
            d.ij_of(12)

    def test_owner_of_point(self):
        d = make_decomp()
        assert d.owner_of_point(0, 0) == 0
        assert d.owner_of_point(23, 11) == 11
        assert d.owner_of_point(7, 5) == d.rank_of(1, 1)

    def test_owner_of_point_out_of_range(self):
        d = make_decomp()
        with pytest.raises(ValueError):
            d.owner_of_point(24, 0)

    def test_bar_serves_contiguous_ranks(self):
        """I/O processor of bar j serves ranks [j*n_sdx, (j+1)*n_sdx)."""
        d = make_decomp()
        for j in range(d.n_sdy):
            ranks = [d.rank_of(i, j) for i in range(d.n_sdx)]
            assert ranks == list(range(j * d.n_sdx, (j + 1) * d.n_sdx))


class TestExpansion:
    def test_expansion_contains_interior(self):
        d = make_decomp()
        for sd in d:
            assert set(sd.interior_flat).issubset(set(sd.expansion_flat))

    def test_expansion_size_interior_subdomain(self):
        d = make_decomp()
        sd = d.subdomain(1, 1)  # away from poles
        assert sd.exp_size == (6 + 2 * 2) * (4 + 2 * 1)

    def test_expansion_clamped_at_poles(self):
        d = make_decomp()
        south = d.subdomain(1, 0)
        assert south.exp_y_indices[0] == 0
        assert len(south.exp_y_indices) == 4 + 1  # only the north halo
        north = d.subdomain(1, 2)
        assert north.exp_y_indices[-1] == 11
        assert len(north.exp_y_indices) == 4 + 1

    def test_expansion_wraps_longitude(self):
        d = make_decomp()
        west = d.subdomain(0, 1)
        assert 22 in west.exp_x_indices and 23 in west.exp_x_indices

    def test_expansion_no_wrap_nonperiodic(self):
        d = make_decomp(periodic=False)
        west = d.subdomain(0, 1)
        assert list(west.exp_x_indices) == list(range(0, 8))

    def test_interior_positions_in_expansion(self):
        d = make_decomp()
        for sd in [d.subdomain(0, 0), d.subdomain(3, 2), d.subdomain(1, 1)]:
            pos = sd.interior_positions_in_expansion
            assert np.array_equal(sd.expansion_flat[pos], sd.interior_flat)

    def test_expansion_coords_match_flat(self):
        d = make_decomp()
        sd = d.subdomain(2, 1)
        ix, iy = sd.expansion_coords
        assert np.array_equal(iy * d.grid.n_x + ix, sd.expansion_flat)

    def test_local_boxes_covered_by_expansion(self):
        """Every interior point's local box lies inside the expansion."""
        from repro.core import local_box

        d = make_decomp()
        for sd in [d.subdomain(0, 0), d.subdomain(3, 2)]:
            exp = set(sd.expansion_flat)
            for flat in sd.interior_flat:
                ix, iy = int(flat % 24), int(flat // 24)
                box = local_box(d.grid, ix, iy, xi=d.xi, eta=d.eta)
                assert set(box.flat_indices(d.grid)).issubset(exp)


class TestLayers:
    def test_layers_partition_interior_rows(self):
        d = make_decomp()
        sd = d.subdomain(1, 1)
        layers = sd.layers(2)
        assert [(l.iy0, l.iy1) for l in layers] == [(4, 6), (6, 8)]

    def test_layers_divisibility_enforced(self):
        d = make_decomp()
        with pytest.raises(ValueError):
            d.subdomain(0, 0).layers(3)  # 4 rows not divisible by 3

    def test_layer_read_rows_include_halo(self):
        d = make_decomp()
        sd = d.subdomain(1, 1)  # interior rows 4..8, eta=1
        layers = sd.layers(2)
        assert (layers[0].read_iy0, layers[0].read_iy1) == (3, 7)
        assert (layers[1].read_iy0, layers[1].read_iy1) == (5, 9)

    def test_layer_read_rows_clamped_at_pole(self):
        d = make_decomp()
        sd = d.subdomain(0, 0)  # interior rows 0..4
        layers = sd.layers(4)
        assert layers[0].read_iy0 == 0

    def test_layer_interiors_partition_subdomain(self):
        d = make_decomp()
        sd = d.subdomain(2, 1)
        got = np.concatenate([sd.layer_interior_flat(l) for l in sd.layers(4)])
        assert np.array_equal(np.sort(got), np.sort(sd.interior_flat))

    def test_layer_expansions_cover_expansion(self):
        d = make_decomp()
        sd = d.subdomain(2, 1)
        pts = set()
        for l in sd.layers(2):
            pts.update(sd.layer_expansion_flat(l))
        assert pts == set(sd.expansion_flat)

    def test_single_layer_equals_whole_expansion(self):
        d = make_decomp()
        sd = d.subdomain(2, 1)
        (layer,) = sd.layers(1)
        assert np.array_equal(
            np.sort(sd.layer_expansion_flat(layer)), np.sort(sd.expansion_flat)
        )


class TestBars:
    def test_bar_rows(self):
        d = make_decomp()
        assert d.bar_rows(0) == (0, 4)
        assert d.bar_rows(2) == (8, 12)

    def test_bar_read_rows_with_halo(self):
        d = make_decomp()
        assert d.bar_read_rows(1) == (3, 9)

    def test_bar_read_rows_clamped(self):
        d = make_decomp()
        assert d.bar_read_rows(0) == (0, 5)
        assert d.bar_read_rows(2) == (7, 12)

    def test_bar_index_out_of_range(self):
        d = make_decomp()
        with pytest.raises(ValueError):
            d.bar_rows(3)
