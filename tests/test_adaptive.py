"""Tests for adaptive inflation (RTPS and innovation-based)."""

import numpy as np
import pytest

from repro.core import Grid, ObservationNetwork, inflate, perturb_observations
from repro.core.adaptive import (
    ensemble_hbht_diag,
    innovation_inflation_factor,
    rtps,
)
from repro.core.analysis import analysis_gain_form
from repro.models import Lorenz96, TwinExperiment


class TestRtps:
    def make(self, seed=0):
        rng = np.random.default_rng(seed)
        xb = rng.normal(0, 2.0, size=(30, 12))
        xa = xb.mean(axis=1, keepdims=True) + 0.4 * (
            xb - xb.mean(axis=1, keepdims=True)
        )
        return xb, xa

    def test_alpha_zero_identity(self):
        xb, xa = self.make()
        assert np.allclose(rtps(xb, xa, relaxation=0.0), xa)

    def test_alpha_one_restores_prior_spread(self):
        xb, xa = self.make()
        out = rtps(xb, xa, relaxation=1.0)
        assert np.allclose(out.std(axis=1, ddof=1), xb.std(axis=1, ddof=1))

    def test_mean_preserved(self):
        xb, xa = self.make()
        out = rtps(xb, xa, relaxation=0.7)
        assert np.allclose(out.mean(axis=1), xa.mean(axis=1))

    def test_intermediate_alpha_between(self):
        xb, xa = self.make()
        out = rtps(xb, xa, relaxation=0.5)
        sa = xa.std(axis=1, ddof=1)
        sb = xb.std(axis=1, ddof=1)
        so = out.std(axis=1, ddof=1)
        assert np.all(so >= sa - 1e-12)
        assert np.all(so <= sb + 1e-12)

    def test_validation(self):
        xb, xa = self.make()
        with pytest.raises(ValueError):
            rtps(xb, xa, relaxation=1.5)
        with pytest.raises(ValueError):
            rtps(xb, xa[:, :5], relaxation=0.5)
        with pytest.raises(ValueError):
            rtps(xb[:, :1], xa[:, :1], relaxation=0.5)

    def test_collapsed_analysis_handled(self):
        xb, xa = self.make()
        xa_collapsed = np.repeat(xa.mean(axis=1, keepdims=True), 12, axis=1)
        out = rtps(xb, xa_collapsed, relaxation=0.5)
        assert np.all(np.isfinite(out))


class TestInnovationInflation:
    def test_consistent_ensemble_needs_no_inflation(self):
        rng = np.random.default_rng(1)
        hbht = np.full(500, 4.0)
        r = np.full(500, 1.0)
        d = rng.normal(0, np.sqrt(5.0), 500)  # matches HBHt + R
        factor = innovation_inflation_factor(d, hbht, r)
        assert factor == pytest.approx(1.0, abs=0.1)

    def test_underdispersed_ensemble_inflates(self):
        rng = np.random.default_rng(2)
        hbht = np.full(500, 1.0)  # ensemble claims small background var
        r = np.full(500, 1.0)
        d = rng.normal(0, np.sqrt(5.0), 500)  # actual innovations larger
        factor = innovation_inflation_factor(d, hbht, r)
        assert factor > 1.3

    def test_clipping(self):
        d = np.full(10, 100.0)
        assert innovation_inflation_factor(d, np.ones(10), np.ones(10),
                                           ceiling=1.5) == 1.5
        d = np.zeros(10)
        assert innovation_inflation_factor(d, np.ones(10), np.ones(10)) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            innovation_inflation_factor(np.array([]), np.array([]), np.array([]))
        with pytest.raises(ValueError):
            innovation_inflation_factor(np.ones(3), np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            innovation_inflation_factor(np.ones(3), np.ones(3), np.ones(3),
                                        floor=2.0, ceiling=1.0)

    def test_hbht_diag_matches_direct(self):
        rng = np.random.default_rng(3)
        states = rng.normal(size=(20, 200))
        h = rng.normal(size=(5, 20))
        diag = ensemble_hbht_diag(states, h)
        u = states - states.mean(axis=1, keepdims=True)
        b = u @ u.T / 199
        assert np.allclose(diag, np.diag(h @ b @ h.T))


class TestAdaptiveCycling:
    def test_rtps_improves_small_localized_ensemble(self):
        """A 10-member tapered EnKF on L96: RTPS counteracts the spread
        collapse and cuts the cycling RMSE substantially.  (Without
        localization a 10-member filter on n=40 diverges no matter the
        inflation — the textbook sampling-error story.)"""
        from repro.filters import SerialEnKF

        model = Lorenz96(n=40, dt=0.05)
        grid = Grid(n_x=40, n_y=1)
        network = ObservationNetwork.regular(grid, every_x=2, every_y=1,
                                             obs_error_std=1.0)
        rng = np.random.default_rng(11)
        truth0 = model.spun_up_state(rng=rng)
        ens0 = truth0[:, None] + rng.normal(0, 3.0, size=(40, 10))

        def run(relaxation):
            filt = SerialEnKF(network, taper_support_km=12.0)

            def assimilate(states, y, cycle_rng):
                xa = filt.assimilate(states, y, rng=cycle_rng)
                return rtps(states, xa, relaxation=relaxation) \
                    if relaxation else xa

            twin = TwinExperiment(model, network, assimilate,
                                  steps_per_cycle=2)
            return twin.run(truth0.copy(), ens0.copy(), n_cycles=40,
                            track_free_run=False)

        with_rtps = run(0.5)
        without = run(0.0)
        assert with_rtps.mean_analysis_rmse(skip=15) < \
            0.6 * without.mean_analysis_rmse(skip=15)
        assert with_rtps.mean_analysis_rmse(skip=15) < 1.0
        # RTPS visibly sustains the spread.
        assert np.mean(with_rtps.spread[15:]) > np.mean(without.spread[15:])
