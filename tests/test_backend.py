"""Tests for the pluggable array backend (:mod:`repro.core.backend`).

NumPy is the only backend the suite *requires*; the jax/cupy cases are
capability probes that skip (with a visible reason) when the package is
not importable, so the zero-extra-dependency install stays green while
an optional-backend CI job can still exercise the real thing.
"""

import numpy as np
import pytest

from repro.core.backend import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    backend_report,
    get_backend,
)


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_resolution_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_env_var_bogus_name_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ValueError, match="unknown backend 'fortran'"):
            get_backend()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_auto_resolves_to_an_available_backend(self):
        assert get_backend("auto").name in available_backends()

    def test_case_insensitive(self):
        assert get_backend("NumPy").name == "numpy"

    def test_report_shape(self):
        report = backend_report("numpy")
        assert report["backend"] == "numpy"
        assert report["device"] == "cpu"
        assert report["batched_linalg"] is True
        assert report["jittable"] is False
        assert "numpy" in report["available"]


class TestNumpyOps:
    def setup_method(self):
        self.bk = get_backend("numpy")
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 5, 3))
        self.spd = a @ a.transpose(0, 2, 1) + 5 * np.eye(5)

    def test_asarray_and_to_numpy_roundtrip(self):
        out = self.bk.to_numpy(self.bk.asarray([1.0, 2.0], dtype=float))
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, [1.0, 2.0])

    def test_batched_cholesky(self):
        chol = self.bk.cholesky(self.spd)
        assert np.allclose(
            np.einsum("bij,bkj->bik", chol, chol), self.spd
        )

    def test_batched_solve(self):
        rhs = np.random.default_rng(1).standard_normal((4, 5, 2))
        x = self.bk.solve(self.spd, rhs)
        assert np.allclose(self.spd @ x, rhs)

    def test_batched_eigh(self):
        w, v = self.bk.eigh(self.spd)
        assert np.allclose(
            np.einsum("bik,bk,bjk->bij", v, w, v), self.spd
        )

    def test_einsum(self):
        assert self.bk.einsum("bii->b", self.spd) == pytest.approx(
            np.trace(self.spd, axis1=1, axis2=2)
        )

    def test_index_update_mutates_in_place(self):
        a = np.zeros(4)
        out = self.bk.index_update(a, np.array([1, 3]), 7.0)
        assert out is a
        assert np.array_equal(a, [0.0, 7.0, 0.0, 7.0])


class TestImmutableSemantics:
    def test_index_update_via_at_hook(self):
        """The immutable branch goes through ``.at[idx].set`` — checked
        with a stub so the JAX semantics are pinned without JAX."""

        class _Setter:
            def __init__(self, owner, idx):
                self.owner, self.idx = owner, idx

            def set(self, values):
                out = self.owner.data.copy()
                out[self.idx] = values
                return _FakeArray(out)

        class _At:
            def __init__(self, owner):
                self.owner = owner

            def __getitem__(self, idx):
                return _Setter(self.owner, idx)

        class _FakeArray:
            def __init__(self, data):
                self.data = data

            @property
            def at(self):
                return _At(self)

        bk = ArrayBackend(name="stub", xp=np, immutable_arrays=True)
        a = _FakeArray(np.zeros(3))
        out = bk.index_update(a, np.array([2]), 5.0)
        assert out is not a
        assert np.array_equal(a.data, [0.0, 0.0, 0.0])  # original untouched
        assert np.array_equal(out.data, [0.0, 0.0, 5.0])


@pytest.mark.skipif(
    "jax" not in available_backends(), reason="jax not installed"
)
class TestJaxBackend:
    def test_resolves_with_x64_and_matches_numpy(self):
        bk = get_backend("jax")
        assert bk.immutable_arrays and bk.jittable
        a = np.random.default_rng(2).standard_normal((3, 4, 4))
        spd = a @ a.transpose(0, 2, 1) + 4 * np.eye(4)
        rhs = np.random.default_rng(3).standard_normal((3, 4, 2))
        x = bk.to_numpy(bk.solve(bk.asarray(spd), bk.asarray(rhs)))
        assert x.dtype == np.float64  # jax_enable_x64 took effect
        assert np.allclose(x, np.linalg.solve(spd, rhs), rtol=1e-10)

    def test_index_update_functional(self):
        bk = get_backend("jax")
        a = bk.asarray(np.zeros(3))
        out = bk.index_update(a, 1, 9.0)
        assert bk.to_numpy(out)[1] == 9.0
        assert bk.to_numpy(a)[1] == 0.0


@pytest.mark.skipif(
    "cupy" not in available_backends(), reason="cupy not installed"
)
class TestCupyBackend:
    def test_resolves_or_reports_no_device(self):
        # cupy imports on GPU-less machines; the factory must then raise
        # the *unavailable* error, not crash at first kernel.
        try:
            bk = get_backend("cupy")
        except BackendUnavailableError as exc:
            assert "cupy" in str(exc)
            return
        assert bk.device == "gpu"
        assert np.array_equal(
            bk.to_numpy(bk.asarray([1.0, 2.0])), [1.0, 2.0]
        )
