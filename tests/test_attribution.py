"""Tests for the predicted-vs-measured attribution layer (cost-model
observatory): per-phase joins, drift flags, schema validation, and the
fitted-constants accuracy acceptance criterion."""

import json
import math

import pytest

from repro.cluster.params import MachineSpec
from repro.costmodel import fit_constants
from repro.filters.base import PerfScenario
from repro.filters.senkf import simulate_senkf
from repro.telemetry import (
    ATTRIBUTION_SCHEMA,
    AttributionReport,
    RunReport,
    attribute_sim_reports,
    cycle_from_sim_report,
    cycle_from_spans,
    spans_from_timeline,
    validate_attribution_report,
    validate_run_report,
)
from repro.telemetry.attribution import CycleAttribution, PhaseAttribution

#: the doctor's calibration regime: an L sweep at fixed splits, so the
#: contention factors are constant and the constants absorb them exactly.
SWEEP_CONFIGS = ((4, 4, 3, 4), (4, 4, 5, 4), (4, 4, 9, 4), (4, 4, 15, 4))


@pytest.fixture(scope="module")
def sweep():
    """(reports, fitted) for a fault-free L sweep on the small machine."""
    spec = MachineSpec.small_cluster()
    scenario = PerfScenario.small()
    template = scenario.cost_params(spec)
    reports = [simulate_senkf(spec, scenario, *cfg) for cfg in SWEEP_CONFIGS]
    fit = fit_constants(reports, template)
    return reports, fit


class TestPhaseAttribution:
    def test_signed_relative_error(self):
        p = PhaseAttribution(phase="read", predicted=1.2, measured=1.0)
        assert p.abs_error == pytest.approx(0.2)
        assert p.rel_error == pytest.approx(0.2)
        under = PhaseAttribution(phase="read", predicted=0.8, measured=1.0)
        assert under.rel_error == pytest.approx(-0.2)

    def test_unmeasured_phase_is_infinite_drift(self):
        p = PhaseAttribution(phase="comm", predicted=0.5, measured=0.0)
        assert math.isinf(p.rel_error)
        # ...but serialises as null, keeping the payload JSON-safe
        assert p.to_dict()["rel_error"] is None
        json.dumps(p.to_dict())

    def test_nothing_predicted_nothing_measured_is_exact(self):
        p = PhaseAttribution(phase="comp", predicted=0.0, measured=0.0)
        assert p.rel_error == 0.0


class TestCycleFromSimReport:
    def test_measured_side_matches_phase_means(self, sweep):
        from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ

        reports, fit = sweep
        report = reports[0]
        cycle = cycle_from_sim_report(report, fit.params)
        io = report.mean_phase_times("io")
        compute = report.mean_phase_times("compute")
        assert cycle.phase("read").measured == pytest.approx(io[PHASE_READ])
        assert cycle.phase("comm").measured == pytest.approx(io[PHASE_COMM])
        assert cycle.phase("comp").measured == pytest.approx(
            compute[PHASE_COMPUTE]
        )
        assert cycle.retry_seconds == 0.0  # fault-free run
        assert cycle.makespan == pytest.approx(report.total_time)
        assert cycle.config == {
            "n_sdx": 4, "n_sdy": 4, "n_layers": 3, "n_cg": 4,
        }

    def test_spans_path_agrees_with_report_path(self, sweep):
        """A trace re-import attributes identically to the raw timeline."""
        reports, fit = sweep
        report = reports[0]
        spans = spans_from_timeline(report.timeline)
        from_spans = cycle_from_spans(
            spans, fit.params,
            n_sdx=report.n_sdx, n_sdy=report.n_sdy,
            n_layers=report.n_layers, n_cg=report.n_cg,
            io_tracks={f"rank {r}" for r in report.io_ranks},
            compute_tracks={f"rank {r}" for r in report.compute_ranks},
        )
        from_report = cycle_from_sim_report(report, fit.params)
        for name in ("read", "comm", "comp"):
            assert from_spans.phase(name).measured == pytest.approx(
                from_report.phase(name).measured
            )
        assert from_spans.retry_seconds == pytest.approx(
            from_report.retry_seconds
        )


class TestAccuracyAcceptance:
    def test_fitted_constants_attribute_within_15_percent(self, sweep):
        """The acceptance criterion: on a traced simulated run, per-phase
        relative error with fitted constants stays ≤ 15% for read, comm
        and comp alike."""
        reports, fit = sweep
        report = attribute_sim_reports(reports, fit.params, fit=fit)
        for p in report.aggregate():
            assert abs(p.rel_error) <= 0.15, (
                f"{p.phase}: predicted {p.predicted} vs "
                f"measured {p.measured} ({p.rel_error:+.1%})"
            )
        # and per cycle, not just in aggregate
        for cycle in report.cycles:
            for name in ("read", "comm", "comp"):
                assert abs(cycle.phase(name).rel_error) <= 0.15
        assert report.drift_flags() == []

    def test_chaos_cycle_breaks_out_retry_spend(self):
        """Retry time lands in retry_seconds, not in the read row —
        attribution prices the fault-free machine."""
        from repro.faults import FaultSchedule, RetryPolicy

        spec = MachineSpec.small_cluster()
        scenario = PerfScenario.small()
        template = scenario.cost_params(spec)
        report = simulate_senkf(
            spec, scenario, 4, 4, 3, 4,
            faults=FaultSchedule(seed=7, disk_fault_rate=0.3),
            retry=RetryPolicy(),
        )
        assert report.resilience.retries > 0
        cycle = cycle_from_sim_report(report, template)
        assert cycle.retry_seconds > 0.0


class TestAttributionReport:
    def make(self, sweep, threshold=0.15):
        reports, fit = sweep
        return attribute_sim_reports(
            reports, fit.params, fit=fit, threshold=threshold,
            notes=["unit test"],
        )

    def test_aggregate_sums_cycles(self, sweep):
        report = self.make(sweep)
        agg = {p.phase: p for p in report.aggregate()}
        assert agg["read"].measured == pytest.approx(
            sum(c.phase("read").measured for c in report.cycles)
        )

    def test_drift_flags_respect_threshold(self, sweep):
        tight = self.make(sweep, threshold=1e-6)
        assert tight.drift_flags()  # nothing is *that* accurate
        loose = self.make(sweep, threshold=0.5)
        assert loose.drift_flags() == []

    def test_write_validates_and_round_trips(self, sweep, tmp_path):
        report = self.make(sweep)
        path = report.write(tmp_path / "attribution.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == ATTRIBUTION_SCHEMA
        validate_attribution_report(payload)
        assert payload["fit"]["constants"]["theta"] == pytest.approx(
            report.constants["theta"]
        )
        assert len(payload["cycles"]) == len(SWEEP_CONFIGS)

    def test_invalid_report_never_hits_disk(self, tmp_path):
        report = AttributionReport(cycles=[], threshold=-1.0)
        target = tmp_path / "bad.json"
        with pytest.raises(ValueError, match="threshold"):
            report.write(target)
        assert not target.exists()

    def test_validator_names_every_violation(self, sweep):
        payload = self.make(sweep).to_dict()
        payload["threshold"] = -0.1
        payload["cycles"][0]["phases"][0]["phase"] = "sideways"
        with pytest.raises(ValueError) as err:
            validate_attribution_report(payload)
        message = str(err.value)
        assert "threshold" in message and "sideways" in message

    def test_unknown_schema_rejected(self, sweep):
        payload = self.make(sweep).to_dict()
        payload["schema"] = "senkf-attribution/99"
        with pytest.raises(ValueError, match="unknown schema"):
            validate_attribution_report(payload)

    def test_ascii_dashboard_renders(self, sweep):
        report = self.make(sweep)
        out = report.ascii_table()
        assert "constants:" in out
        assert "fit residuals" in out
        for phase in ("read", "comm", "comp"):
            assert phase in out
        assert "retry spend" in out
        # the per-cycle breakdown appears for multi-cycle reports
        assert "L=15" in out

    def test_histogram_percentiles_surface_on_dashboard(self, sweep):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        h = registry.histogram("cycle_seconds", bounds=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0, 12.0):
            h.observe(v)
        reports, fit = sweep
        report = attribute_sim_reports(
            reports, fit.params, metrics=registry.snapshot()
        )
        assert "cycle_seconds" in report.ascii_table()
        assert "p50=" in report.ascii_table()


class TestRunReportEmbedding:
    def make_run_report(self, sweep):
        reports, fit = sweep
        attribution = attribute_sim_reports(reports, fit.params, fit=fit)
        return RunReport(
            kind="doctor",
            n_cycles=len(reports),
            phase_totals={p.phase: p.measured for p in attribution.aggregate()},
            attribution=attribution.to_dict(),
        )

    def test_embedded_attribution_validates(self, sweep, tmp_path):
        run_report = self.make_run_report(sweep)
        path = run_report.write(tmp_path / "run_report.json")
        restored = RunReport.from_dict(json.loads(path.read_text()))
        assert restored.attribution["schema"] == ATTRIBUTION_SCHEMA

    def test_embedded_attribution_violations_propagate(self, sweep):
        run_report = self.make_run_report(sweep)
        payload = run_report.to_dict()
        payload["attribution"]["schema"] = "senkf-attribution/99"
        with pytest.raises(ValueError, match="attribution"):
            validate_run_report(payload)

    def test_attribution_stays_optional(self):
        payload = RunReport(kind="plain").to_dict()
        assert payload["attribution"] is None
        validate_run_report(json.loads(json.dumps(payload)))
