"""Tests for the fault-injection + resilience subsystem (simulated side).

Covers the seeded :class:`FaultSchedule` (determinism properties via
hypothesis), the retry policy, the machine-layer injection points (disk
faults, outages, slowdowns, message delay/drop), the resilient plan
executor, failover re-planning, the deadlock watchdogs, and the chaos
acceptance criteria for the fault-aware S-EnKF orchestration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec
from repro.core import Decomposition, Grid
from repro.faults import (
    DeadlockError,
    DiskFaultError,
    DiskOutage,
    FaultInjector,
    FaultSchedule,
    MemberUnrecoverableError,
    ResilienceReport,
    RetryPolicy,
)
from repro.filters.base import PerfScenario
from repro.filters.penkf import simulate_penkf
from repro.filters.senkf import simulate_senkf
from repro.io import (
    FileLayout,
    bar_read_plan,
    concurrent_access_plan,
    failover_replan,
    simulate_read_plan,
)
from repro.mpisim import Communicator
from repro.sim.trace import PHASE_RETRY

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)


def tiny_spec(**kw):
    defaults = dict(
        alpha=1e-5,
        beta=1e-9,
        theta=5e-9,
        c_point=1e-5,
        seek_time=1e-3,
        n_storage_nodes=4,
        disk_concurrency=4,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


def tiny_scenario():
    return PerfScenario(n_x=48, n_y=24, n_members=8, h_bytes=240, xi=2, eta=1)


def setup_plan(n_files=8):
    grid = Grid(n_x=24, n_y=12)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=3, xi=2, eta=1)
    layout = FileLayout(grid=grid, h_bytes=8)
    return decomp, layout, bar_read_plan(decomp, layout, n_files=n_files)


# ---------------------------------------------------------------------------
# FaultSchedule determinism
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, rate=st.floats(0.0, 1.0, allow_nan=False))
    def test_same_seed_same_fingerprint(self, seed, rate):
        make = lambda: FaultSchedule(  # noqa: E731
            seed,
            disk_fault_rate=rate,
            message_drop_rate=rate / 2,
            member_fault_rate=rate,
        )
        assert make().fingerprint(64) == make().fingerprint(64)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**62))
    def test_different_seed_different_decisions(self, seed):
        a = FaultSchedule(seed, disk_fault_rate=0.5)
        b = FaultSchedule(seed + 1, disk_fault_rate=0.5)
        assert a.fingerprint(128) != b.fingerprint(128)

    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS)
    def test_query_order_independent(self, seed):
        sched = FaultSchedule(seed, disk_fault_rate=0.3, disk_slowdown_rate=0.3)
        forward = [sched.disk_request(0, s) for s in range(32)]
        backward = [sched.disk_request(0, s) for s in reversed(range(32))]
        assert forward == list(reversed(backward))

    def test_null_schedule(self):
        sched = FaultSchedule(seed=7)
        assert sched.is_null
        assert sched.disk_request(0, 0) is None
        assert sched.message_fault(0, 1, 0, 0) == (0.0, False)
        assert sched.member_failures(3) == 0
        assert not sched.member_corrupt(3)
        assert not FaultSchedule(seed=7, disk_fault_rate=0.1).is_null
        assert not FaultSchedule(
            seed=7, killed_ranks=((3, 1.0),)
        ).is_null

    def test_certain_rates_always_fire(self):
        sched = FaultSchedule(seed=1, disk_fault_rate=1.0, message_drop_rate=1.0)
        assert all(sched.disk_request(d, s).fail for d in range(4) for s in range(16))
        assert all(
            sched.message_fault(0, 1, t, s)[1] for t in range(4) for s in range(16)
        )

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule(seed=0, disk_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultSchedule(seed=0, message_drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSchedule(seed=0, disk_slowdown_factor=0.5)
        with pytest.raises(ValueError):
            FaultSchedule(seed=0, stragglers=((2, 0.5),))
        with pytest.raises(ValueError):
            DiskOutage(disk_id=0, start=2.0, end=1.0)

    def test_outage_window(self):
        sched = FaultSchedule(
            seed=0, outages=(DiskOutage(disk_id=2, start=1.0, end=2.0),)
        )
        assert sched.disk_available(2, 0.5)
        assert not sched.disk_available(2, 1.0)
        assert not sched.disk_available(2, 1.999)
        assert sched.disk_available(2, 2.0)
        assert sched.disk_available(1, 1.5)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=5, base_delay=1e-3, multiplier=2.0,
                             max_delay=3e-3)
        delays = [policy.delay(a) for a in range(5)]
        assert delays[0] == pytest.approx(1e-3)
        assert delays[1] == pytest.approx(2e-3)
        assert all(d <= 3e-3 for d in delays)
        assert delays[-1] == pytest.approx(3e-3)

    def test_should_retry_bounds(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(0)
        assert policy.should_retry(1)
        assert not policy.should_retry(2)

    def test_deadline(self):
        policy = RetryPolicy(max_retries=100, deadline=1.0)
        assert policy.should_retry(0, elapsed=0.5)
        assert not policy.should_retry(0, elapsed=1.5)

    def test_none_never_retries(self):
        assert not RetryPolicy.none().should_retry(0)


# ---------------------------------------------------------------------------
# Report + injector recording
# ---------------------------------------------------------------------------
class TestReportAndInjector:
    def test_report_counters_and_slowdown(self):
        report = ResilienceReport()
        report.disk_faults += 2
        report.drop_member(3)
        report.drop_member(3)
        assert report.members_dropped == [3]
        report.finalize(2.0, clean_makespan=1.0)
        assert report.slowdown == pytest.approx(2.0)
        summary = report.summary()
        assert summary["faults_injected"] == 2.0
        assert summary["slowdown"] == pytest.approx(2.0)

    def test_injector_records_queries(self):
        injector = FaultInjector(FaultSchedule(seed=0, disk_fault_rate=1.0))
        assert injector.disk_request(0, 0).fail
        assert injector.report.disk_faults == 1
        injector = FaultInjector(
            FaultSchedule(
                seed=0, outages=(DiskOutage(disk_id=0, start=0.0, end=1.0),)
            )
        )
        assert not injector.disk_available(0, 0.5)
        assert injector.report.outage_hits == 1


# ---------------------------------------------------------------------------
# Machine-layer injection
# ---------------------------------------------------------------------------
def run_one_read(schedule, file_id=0, seeks=1, nbytes=4096, spec=None):
    machine = Machine(
        spec or tiny_spec(n_storage_nodes=1),
        faults=FaultInjector(schedule) if schedule is not None else None,
    )
    result = {}

    def proc():
        try:
            out = yield from machine.pfs.read(file_id, seeks=seeks, nbytes=nbytes)
            result["outcome"] = out
        except DiskFaultError as exc:
            result["error"] = exc

    machine.env.process(proc())
    machine.run()
    result["makespan"] = machine.env.now
    return result


class TestDiskInjection:
    def test_transient_fault_raises_after_service(self):
        clean = run_one_read(None)
        faulty = run_one_read(FaultSchedule(seed=0, disk_fault_rate=1.0))
        assert "error" in faulty
        assert faulty["error"].disk_id == 0
        # The failed request still consumed its full service time.
        assert faulty["makespan"] == pytest.approx(clean["makespan"])

    def test_outage_fails_fast(self):
        sched = FaultSchedule(
            seed=0, outages=(DiskOutage(disk_id=0, start=0.0, end=10.0),)
        )
        result = run_one_read(sched)
        assert "error" in result
        assert "outage" in str(result["error"])

    def test_slowdown_stretches_service(self):
        clean = run_one_read(None)
        slow = run_one_read(
            FaultSchedule(seed=0, disk_slowdown_rate=1.0, disk_slowdown_factor=4.0)
        )
        assert "outcome" in slow
        assert slow["makespan"] > clean["makespan"]

    def test_null_schedule_makespan_identical(self):
        clean = run_one_read(None)
        null = run_one_read(FaultSchedule(seed=123))
        assert null["makespan"] == clean["makespan"]
        assert "outcome" in null


# ---------------------------------------------------------------------------
# Resilient plan executor
# ---------------------------------------------------------------------------
class TestSimulateReadPlanResilient:
    def test_retries_recover_and_are_recorded(self):
        _, _, plan = setup_plan()
        sched = FaultSchedule(seed=5, disk_fault_rate=0.15)
        machine = Machine(tiny_spec(), faults=FaultInjector(sched))
        timeline, makespan = simulate_read_plan(
            machine, plan, retry=RetryPolicy(max_retries=8)
        )
        report = machine.faults.report
        assert report.disk_faults > 0
        assert report.retries == report.disk_faults
        assert report.failed_ops == 0
        assert timeline.total(PHASE_RETRY) > 0
        # Retried run still covers every rank's reads and costs more time.
        clean_machine = Machine(tiny_spec())
        _, clean_makespan = simulate_read_plan(clean_machine, plan)
        assert makespan > clean_makespan

    def test_unrecoverable_raises_by_default(self):
        _, _, plan = setup_plan()
        sched = FaultSchedule(seed=5, disk_fault_rate=1.0)
        machine = Machine(tiny_spec(), faults=FaultInjector(sched))
        with pytest.raises(MemberUnrecoverableError):
            simulate_read_plan(machine, plan, retry=RetryPolicy(max_retries=1))

    def test_unrecoverable_drop_records_members(self):
        _, _, plan = setup_plan()
        sched = FaultSchedule(seed=5, disk_fault_rate=1.0)
        machine = Machine(tiny_spec(), faults=FaultInjector(sched))
        _, makespan = simulate_read_plan(
            machine, plan, retry=RetryPolicy(max_retries=1),
            on_unrecoverable="drop",
        )
        report = machine.faults.report
        assert makespan > 0
        assert sorted(report.members_dropped) == list(range(plan.n_files))
        assert report.failed_ops > 0

    def test_deterministic_under_same_seed(self):
        _, _, plan = setup_plan()

        def run():
            sched = FaultSchedule(seed=17, disk_fault_rate=0.2)
            machine = Machine(tiny_spec(), faults=FaultInjector(sched))
            _, makespan = simulate_read_plan(
                machine, plan, retry=RetryPolicy(max_retries=8)
            )
            return makespan, machine.faults.report.summary()

        assert run() == run()

    def test_zero_fault_schedule_leaves_makespan_unchanged(self):
        _, _, plan = setup_plan()
        clean_machine = Machine(tiny_spec())
        _, clean = simulate_read_plan(clean_machine, plan)
        null_machine = Machine(
            tiny_spec(), faults=FaultInjector(FaultSchedule(seed=9))
        )
        _, null = simulate_read_plan(
            null_machine, plan, retry=RetryPolicy(max_retries=3)
        )
        assert null == clean


# ---------------------------------------------------------------------------
# Failover re-planning
# ---------------------------------------------------------------------------
class TestFailoverReplan:
    def test_preserves_total_work(self):
        decomp, layout, _ = setup_plan()
        plan = concurrent_access_plan(decomp, layout, n_files=8, n_cg=2)
        victim = plan.reader_ranks[1]
        replanned = failover_replan(plan, [victim])
        assert victim not in replanned.reader_ranks
        assert replanned.total_seeks == plan.total_seeks
        assert replanned.total_elems_read == plan.total_elems_read

        def delivered(p):
            out = {}
            for rp in p.per_rank.values():
                for s in rp.sends:
                    key = (s.dest, s.tag)
                    out[key] = out.get(key, 0) + s.n_elems
            return out

        assert delivered(replanned) == delivered(plan)

    def test_sends_follow_their_read(self):
        decomp, layout, _ = setup_plan()
        plan = concurrent_access_plan(decomp, layout, n_files=8, n_cg=2)
        victim = plan.reader_ranks[0]
        replanned = failover_replan(plan, [victim])
        # Every send is issued by its own rank, for a file that rank reads
        # (the adopted sends followed their read to the adopter).
        for rank, rp in replanned.per_rank.items():
            own_files = {op.file_id for op in rp.reads}
            for s in rp.sends:
                assert s.source == rank
                assert s.tag in own_files

    def test_round_robin_spreads_adopted_reads(self):
        decomp, layout, _ = setup_plan()
        plan = concurrent_access_plan(decomp, layout, n_files=8, n_cg=2)
        victim = plan.reader_ranks[0]
        n_victim_reads = len(plan.per_rank[victim].reads)
        replanned = failover_replan(plan, [victim])
        extra = {
            rank: len(replanned.per_rank[rank].reads) - len(plan.per_rank[rank].reads)
            for rank in replanned.reader_ranks
        }
        assert sum(extra.values()) == n_victim_reads
        assert max(extra.values()) <= n_victim_reads // len(
            [v for v in extra.values() if v > 0]
        ) + 1

    def test_no_surviving_peer_raises(self):
        decomp, layout, plan = setup_plan()
        with pytest.raises(ValueError):
            failover_replan(plan, plan.reader_ranks)

    def test_peers_of_restricts_adopters(self):
        decomp, layout, _ = setup_plan()
        plan = concurrent_access_plan(decomp, layout, n_files=8, n_cg=2)
        group = plan.reader_ranks[:3]  # first concurrent group (n_sdy=3)
        victim = group[0]
        replanned = failover_replan(
            plan, [victim], peers_of=lambda r: [p for p in group if p != r]
        )
        adopters = {
            rank
            for rank, rp in replanned.per_rank.items()
            for op in rp.reads
            if op.file_id in {o.file_id for o in plan.per_rank[victim].reads}
            and op in rp.reads
            and rank not in (victim,)
            and len(rp.reads) > len(plan.per_rank.get(rank).reads)
        }
        assert adopters <= set(group[1:])


# ---------------------------------------------------------------------------
# Deadlock watchdogs
# ---------------------------------------------------------------------------
class TestWatchdogs:
    def make_comm(self, size=2):
        machine = Machine(MachineSpec(alpha=1e-3, beta=1e-6))
        return machine, Communicator(machine, size=size)

    def test_recv_watchdog_raises_deadlock_error(self):
        machine, comm = self.make_comm()

        def main(ctx):
            if ctx.rank == 1:
                yield from ctx.recv(source=0, tag=3, timeout=0.5)

        comm.spawn(main)
        with pytest.raises(DeadlockError) as err:
            machine.run()
        assert err.value.ranks == (1,)
        assert "tag=3" in str(err.value)

    def test_drain_hook_names_stuck_ranks(self):
        machine, comm = self.make_comm(size=3)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=100, tag=0)
            elif ctx.rank == 1:
                yield from ctx.recv(source=0, tag=0)
                yield from ctx.recv(source=2, tag=9)  # never sent

        comm.spawn(main)
        with pytest.raises(DeadlockError) as err:
            machine.run()
        assert err.value.ranks == (1,)
        assert "tag=9" in str(err.value)

    def test_winning_watchdog_does_not_inflate_makespan(self):
        def run(timeout):
            machine, comm = self.make_comm()
            done = []

            def main(ctx):
                if ctx.rank == 0:
                    yield from ctx.send(1, nbytes=1000, tag=0)
                else:
                    yield from ctx.recv(source=0, tag=0, timeout=timeout)
                    done.append(ctx.env.now)

            comm.spawn(main)
            machine.run()
            return machine.env.now, done

        plain = run(None)
        watched = run(1e6)  # absurdly long watchdog, recv wins the race
        assert watched == plain

    def test_dropped_message_surfaces_as_deadlock(self):
        machine = Machine(
            MachineSpec(alpha=1e-3, beta=1e-6),
            faults=FaultInjector(FaultSchedule(seed=0, message_drop_rate=1.0)),
        )
        comm = Communicator(machine, size=2)

        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes=100, tag=0)
            else:
                yield from ctx.recv(source=0, tag=0)

        comm.spawn(main)
        with pytest.raises(DeadlockError):
            machine.run()
        assert machine.faults.report.messages_dropped == 1

    def test_waitall_watchdog(self):
        machine, comm = self.make_comm(size=3)

        def main(ctx):
            if ctx.rank == 0:
                reqs = [ctx.isend(1, nbytes=100, tag=0)]
                # rank 2 never receives, but isend completes eagerly; add a
                # never-completing request via a recv-backed process.
                def stuck():
                    yield ctx.irecv(source=2, tag=5)

                reqs.append(ctx.env.process(stuck(), name="stuck-recv"))
                yield from ctx.waitall(reqs, timeout=0.25)

        comm.spawn(main, ranks=[0])
        with pytest.raises(DeadlockError) as err:
            machine.run()
        assert err.value.ranks == (0,)


# ---------------------------------------------------------------------------
# Chaos acceptance: fault-aware S-EnKF / P-EnKF
# ---------------------------------------------------------------------------
class TestSEnKFChaos:
    SENKF_ARGS = dict(n_sdx=4, n_sdy=3, n_layers=2, n_cg=2)

    def clean_run(self):
        return simulate_senkf(tiny_spec(), tiny_scenario(), **self.SENKF_ARGS)

    def test_survives_disk_faults_and_killed_io_rank(self):
        clean = self.clean_run()
        n_compute = self.SENKF_ARGS["n_sdx"] * self.SENKF_ARGS["n_sdy"]
        sched = FaultSchedule(
            seed=42,
            disk_fault_rate=0.05,
            killed_ranks=((n_compute + 1, 0.002),),
        )
        report = simulate_senkf(
            tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
            faults=sched, retry=RetryPolicy(max_retries=8),
        )
        res = report.resilience
        assert res is not None
        assert res.ranks_killed == [n_compute + 1]
        assert res.failovers >= 1
        assert res.disk_faults > 0
        # The headline acceptance criterion: completes via failover within
        # 2x the clean makespan.
        assert report.total_time <= 2 * clean.total_time
        res.finalize(report.total_time, clean.total_time)
        assert res.slowdown <= 2.0

    def test_chaos_run_is_deterministic(self):
        def run():
            sched = FaultSchedule(seed=11, disk_fault_rate=0.1,
                                  killed_ranks=((13, 0.003),))
            report = simulate_senkf(
                tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
                faults=sched, retry=RetryPolicy(max_retries=8),
            )
            return report.total_time, report.resilience.summary()

        assert run() == run()

    def test_zero_fault_schedule_identical_makespan(self):
        clean = self.clean_run()
        null = simulate_senkf(
            tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
            faults=FaultSchedule(seed=1), retry=RetryPolicy(),
        )
        assert null.total_time == clean.total_time
        assert null.resilience.faults_injected == 0

    def test_straggler_compute_rank_slows_run(self):
        clean = self.clean_run()
        slow = simulate_senkf(
            tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
            faults=FaultSchedule(seed=1, stragglers=((0, 8.0),)),
        )
        assert slow.total_time > clean.total_time

    def test_killed_compute_rank_rejected(self):
        with pytest.raises(ValueError, match="I/O rank"):
            simulate_senkf(
                tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
                faults=FaultSchedule(seed=1, killed_ranks=((0, 0.01),)),
            )

    def test_dropped_member_degrades_gracefully(self):
        # Certain disk failure with a single-retry policy: members on the
        # faulty path are dropped but the run still completes.
        sched = FaultSchedule(seed=3, disk_fault_rate=0.35)
        report = simulate_senkf(
            tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
            faults=sched, retry=RetryPolicy(max_retries=0),
        )
        res = report.resilience
        assert res.failed_ops > 0
        assert res.members_dropped
        assert report.total_time > 0

    def test_report_summary_carries_chaos_keys(self):
        sched = FaultSchedule(seed=11, disk_fault_rate=0.1)
        report = simulate_senkf(
            tiny_spec(), tiny_scenario(), **self.SENKF_ARGS,
            faults=sched, retry=RetryPolicy(max_retries=8),
        )
        summary = report.summary()
        assert "chaos_faults_injected" in summary
        assert summary["chaos_retries"] >= summary["chaos_faults_injected"] - \
            summary["chaos_failed_ops"] - summary["chaos_disk_slowdowns"]


class TestPEnKFChaos:
    def test_zero_fault_schedule_identical_makespan(self):
        clean = simulate_penkf(tiny_spec(), tiny_scenario(), 4, 3)
        null = simulate_penkf(
            tiny_spec(), tiny_scenario(), 4, 3,
            faults=FaultSchedule(seed=2), retry=RetryPolicy(),
        )
        assert null.total_time == clean.total_time

    def test_retries_recover(self):
        sched = FaultSchedule(seed=4, disk_fault_rate=0.1)
        report = simulate_penkf(
            tiny_spec(), tiny_scenario(), 4, 3,
            faults=sched, retry=RetryPolicy(max_retries=8),
        )
        res = report.resilience
        assert res.disk_faults > 0
        assert res.failed_ops == 0
        assert not res.members_dropped


# ---------------------------------------------------------------------------
# FaultSchedule serialisation (checkpoint manifests persist schedules as JSON)
# ---------------------------------------------------------------------------
_rates = st.floats(0.0, 1.0, allow_nan=False)
_times = st.floats(0.0, 10.0, allow_nan=False)


def _schedules():
    """Arbitrary valid schedules, every field exercised."""
    outages = st.lists(
        st.tuples(st.integers(0, 7), _times, st.floats(0.5, 5.0, allow_nan=False)),
        max_size=3,
    ).map(lambda xs: tuple(DiskOutage(d, s, s + w) for d, s, w in xs))
    rank_factors = st.lists(
        st.tuples(st.integers(0, 63), st.floats(1.0, 8.0, allow_nan=False)),
        max_size=3,
    ).map(tuple)
    rank_times = st.lists(
        st.tuples(st.integers(0, 63), _times), max_size=3
    ).map(tuple)
    return st.builds(
        FaultSchedule,
        seed=SEEDS,
        disk_fault_rate=_rates,
        disk_slowdown_rate=_rates,
        disk_slowdown_factor=st.floats(1.0, 16.0, allow_nan=False),
        outages=outages,
        stragglers=rank_factors,
        message_delay_rate=_rates,
        message_delay=_times,
        message_drop_rate=_rates,
        killed_ranks=rank_times,
        member_fault_rate=_rates,
        member_fault_attempts=st.integers(0, 5),
        member_corrupt_rate=_rates,
        member_write_fault_rate=_rates,
        member_write_attempts=st.integers(0, 5),
        worker_crash_rate=_rates,
        worker_hang_rate=_rates,
        worker_hang_seconds=st.floats(0.0, 60.0, allow_nan=False),
    )


class TestScheduleSerialisation:
    @settings(max_examples=60, deadline=None)
    @given(schedule=_schedules())
    def test_json_roundtrip_is_decision_identical(self, schedule):
        """to_dict -> JSON -> from_dict rebuilds the *same* schedule.

        Equality of the frozen dataclass covers every field; equality of
        the fingerprints covers the actual fault *decisions* (the
        fingerprint hashes sampled draws from every injection site), so a
        resumed campaign replays fault-for-fault what the manifest froze.
        """
        import json

        wire = json.loads(json.dumps(schedule.to_dict()))
        rebuilt = FaultSchedule.from_dict(wire)
        assert rebuilt == schedule
        assert rebuilt.fingerprint() == schedule.fingerprint()

    @settings(max_examples=20, deadline=None)
    @given(schedule=_schedules())
    def test_dict_survives_double_roundtrip(self, schedule):
        once = FaultSchedule.from_dict(schedule.to_dict())
        assert once.to_dict() == schedule.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        data = FaultSchedule(1).to_dict()
        data["surprise"] = 1.0
        with pytest.raises(ValueError):
            FaultSchedule.from_dict(data)

    def test_worker_knobs_roundtrip(self):
        schedule = FaultSchedule(
            9, worker_crash_rate=0.25, worker_hang_rate=0.1,
            worker_hang_seconds=2.5,
        )
        rebuilt = FaultSchedule.from_dict(schedule.to_dict())
        assert rebuilt == schedule
        assert rebuilt.fingerprint() == schedule.fingerprint()
        assert rebuilt.has_worker_faults

    def test_tolerant_reader_accepts_pre_worker_payloads(self):
        """Manifests cut before the worker knobs existed keep resuming."""
        data = FaultSchedule(9, disk_fault_rate=0.1).to_dict()
        for key in ("worker_crash_rate", "worker_hang_rate",
                    "worker_hang_seconds"):
            del data[key]
        rebuilt = FaultSchedule.from_dict(data)
        assert rebuilt.worker_crash_rate == 0.0
        assert rebuilt.worker_hang_rate == 0.0
        assert not rebuilt.has_worker_faults
        assert rebuilt == FaultSchedule(9, disk_fault_rate=0.1)
