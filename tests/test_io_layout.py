"""Tests for FileLayout, extents and contiguous runs."""

import numpy as np
import pytest

from repro.core import Grid
from repro.io import FileLayout, contiguous_runs


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs(np.array([])) == []

    def test_single_run(self):
        assert contiguous_runs(np.array([3, 4, 5])) == [(3, 3)]

    def test_two_runs(self):
        assert contiguous_runs(np.array([0, 1, 5, 6, 7])) == [(0, 2), (5, 3)]

    def test_wrapped_expansion_columns(self):
        """The wrapped expansion column list splits at the seam."""
        assert contiguous_runs(np.array([22, 23, 0, 1, 2])) == [(0, 3), (22, 2)]

    def test_unsorted_and_duplicates(self):
        assert contiguous_runs(np.array([5, 3, 4, 5])) == [(3, 3)]

    def test_singletons(self):
        assert contiguous_runs(np.array([1, 3, 5])) == [(1, 1), (3, 1), (5, 1)]


class TestFileLayout:
    def layout(self, n_x=24, n_y=12, h=8):
        return FileLayout(grid=Grid(n_x=n_x, n_y=n_y), h_bytes=h)

    def test_file_size(self):
        lo = self.layout()
        assert lo.file_elems == 288
        assert lo.file_bytes == 2304

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            FileLayout(grid=Grid(n_x=4, n_y=4), h_bytes=0)

    def test_full_file_extent(self):
        lo = self.layout()
        assert lo.full_file_extent() == [(0, 288)]

    def test_bar_is_one_extent(self):
        lo = self.layout()
        assert lo.bar_extents(4, 8) == [(96, 96)]

    def test_bar_invalid_rows(self):
        lo = self.layout()
        with pytest.raises(ValueError):
            lo.bar_extents(8, 4)
        with pytest.raises(ValueError):
            lo.bar_extents(0, 13)

    def test_block_one_extent_per_row(self):
        lo = self.layout()
        extents = lo.block_extents(np.arange(6, 12), 2, 5)
        assert extents == [(54, 6), (78, 6), (102, 6)]

    def test_block_wrapped_two_extents_per_row(self):
        lo = self.layout()
        cols = np.array([22, 23, 0, 1])
        extents = lo.block_extents(cols, 0, 2)
        assert extents == [(0, 2), (22, 2), (24, 2), (46, 2)]

    def test_block_seek_count_scaling(self):
        """Seeks per block = rows x column-runs: the Fig. 5 cost driver."""
        lo = self.layout(n_x=100, n_y=50)
        rows = 10
        extents = lo.block_extents(np.arange(20, 30), 0, rows)
        assert len(extents) == rows

    def test_extent_indices_roundtrip(self):
        lo = self.layout()
        extents = lo.block_extents(np.arange(0, 4), 1, 3)
        idx = FileLayout.extent_indices(extents)
        assert list(idx) == [24, 25, 26, 27, 48, 49, 50, 51]

    def test_extent_indices_empty(self):
        assert FileLayout.extent_indices([]).size == 0

    def test_nbytes(self):
        lo = self.layout(h=240)
        assert lo.nbytes(10) == 2400


class TestPlanDataStructures:
    def test_readop_validation(self):
        from repro.io import ReadOp

        with pytest.raises(ValueError):
            ReadOp(file_id=-1, extents=((0, 5),))
        with pytest.raises(ValueError):
            ReadOp(file_id=0, extents=((-1, 5),))
        with pytest.raises(ValueError):
            ReadOp(file_id=0, extents=((0, 0),))

    def test_readop_trusted_matches_checked(self):
        from repro.io import ReadOp

        extents = ((0, 5), (10, 3))
        a = ReadOp(file_id=2, extents=extents)
        b = ReadOp._trusted(2, extents)
        assert a == b
        assert b.seeks == 2 and b.n_elems == 8

    def test_sendop_validation(self):
        from repro.io import SendOp

        with pytest.raises(ValueError):
            SendOp(source=0, dest=1, n_elems=-1)
        op = SendOp(source=0, dest=1, n_elems=10)
        lo = FileLayout(grid=Grid(n_x=4, n_y=4), h_bytes=240)
        assert op.nbytes(lo) == 2400

    def test_rank_plan_aggregates(self):
        from repro.io import RankReadPlan, ReadOp

        rp = RankReadPlan(rank=0)
        rp.reads.append(ReadOp(file_id=0, extents=((0, 4), (8, 4))))
        rp.reads.append(ReadOp(file_id=1, extents=((0, 2),)))
        assert rp.total_seeks == 3
        assert rp.total_elems == 10

    def test_read_plan_totals(self):
        from repro.core import Decomposition
        from repro.io import block_read_plan

        grid = Grid(n_x=24, n_y=12)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=0, eta=0)
        layout = FileLayout(grid=grid, h_bytes=8)
        plan = block_read_plan(decomp, layout, n_files=3)
        # No halo: each file read exactly once in total.
        assert plan.total_elems_read == 3 * grid.n
        assert plan.total_bytes_read() == 3 * grid.n * 8
        assert plan.total_seeks == 3 * 4 * 6  # 3 files x 4 ranks x 6 rows
