"""Tests for CSV/JSON export of figure results."""

import csv
import json

import pytest

from repro.experiments.export import (
    export_csv,
    export_json,
    export_result,
    load_json,
)
from repro.experiments.result import FigureResult


@pytest.fixture()
def result():
    return FigureResult(
        name="fig99",
        title="Test figure",
        claim="testing",
        columns=["n_p", "time"],
        rows=[{"n_p": 10, "time": 1.5}, {"n_p": 20, "time": 0.9}],
        acceptance={"check": True},
        notes=["a note"],
    )


class TestExport:
    def test_csv_roundtrip(self, result, tmp_path):
        path = export_csv(result, tmp_path)
        assert path.name == "fig99.csv"
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["n_p"] == "10"
        assert float(rows[1]["time"]) == 0.9

    def test_json_roundtrip(self, result, tmp_path):
        path = export_json(result, tmp_path)
        loaded = load_json(path)
        assert loaded.name == result.name
        assert loaded.rows == result.rows
        assert loaded.acceptance == result.acceptance
        assert loaded.passed == result.passed

    def test_export_result_writes_both(self, result, tmp_path):
        paths = export_result(result, tmp_path)
        assert {p.suffix for p in paths} == {".csv", ".json"}
        assert all(p.exists() for p in paths)

    def test_creates_directory(self, result, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_csv(result, target)
        assert (target / "fig99.csv").exists()

    def test_json_is_valid(self, result, tmp_path):
        path = export_json(result, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["passed"] is True
        assert payload["columns"] == ["n_p", "time"]

    def test_cli_export_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cluster import MachineSpec
        from repro.experiments import ExperimentConfig
        from repro.filters import PerfScenario
        import repro.experiments.cli as cli

        micro = ExperimentConfig(
            full=False,
            spec=MachineSpec.small_cluster(),
            scenario=PerfScenario(n_x=96, n_y=48, n_members=8, h_bytes=240,
                                  xi=2, eta=1),
            scaling_configs=((4, 4), (8, 4)),
            fig5_n_sdx=(4, 8, 16),
            fig5_n_sdy=4,
            fig5_members=8,
            fig10_groups=(1, 2, 4),
            fig12_c2=16,
        )
        monkeypatch.setattr(cli, "default_config", lambda full=None: micro)
        cli.main(["fig05", "--export", str(tmp_path / "out")])
        assert (tmp_path / "out" / "fig05.csv").exists()
        assert (tmp_path / "out" / "fig05.json").exists()
