"""Unit tests for the telemetry substrate (tracer, metrics, exporters)."""

import json
import math
import threading

import pytest

from repro.telemetry import (
    NULL_TRACER,
    MetricsRegistry,
    RunReport,
    Span,
    Tracer,
    chrome_trace,
    get_metrics,
    get_tracer,
    render_phase_totals,
    render_spans,
    render_timeline,
    spans_from_chrome,
    spans_from_timeline,
    percentiles_from_buckets,
    use_metrics,
    use_thread_metrics,
    use_tracer,
    validate_run_report,
    write_chrome_trace,
)
from repro.telemetry.chrome import REAL_PID, SIM_PID


class FakeClock:
    """Deterministic clock: each reading advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class TestTracer:
    def test_spans_nest_through_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        # children close before their parents
        assert by_name["inner"].end <= by_name["outer"].end

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("op", category="io", member=3) as span:
            span.set(bytes=4096)
        (recorded,) = tracer.spans
        assert recorded.attrs == {"member": 3, "bytes": 4096}
        assert recorded.category == "io"

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(KeyError):
            with tracer.span("boom"):
                raise KeyError("x")
        (span,) = tracer.spans
        assert span.attrs["error"] == "KeyError"
        assert span.end > span.start  # still closed

    def test_record_parents_under_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            t0 = tracer.now()
            t1 = tracer.now()
            tracer.record("attempt", t0, t1, category="fault", attempt=1)
        attempt = next(s for s in tracer.spans if s.name == "attempt")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert attempt.parent_id == outer.span_id
        assert attempt.attrs == {"attempt": 1}

    def test_events_capture_instant_markers(self):
        tracer = Tracer(clock=FakeClock())
        tracer.event("fault.injected", category="fault", member=2)
        (evt,) = tracer.events
        assert evt.name == "fault.injected"
        assert evt.attrs == {"member": 2}

    def test_threads_get_their_own_track_and_stack(self):
        tracer = Tracer()
        def work():
            with tracer.span("worker-op"):
                pass
        thread = threading.Thread(target=work, name="worker-1")
        with tracer.span("main-op"):
            thread.start()
            thread.join()
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["main-op"].track == "main"
        assert by_name["worker-op"].track == "worker-1"
        # the worker span must not be parented under the main thread's span
        assert by_name["worker-op"].parent_id is None

    def test_concurrent_span_recording_is_lossless(self):
        tracer = Tracer()
        n_threads, n_spans = 8, 50
        def work(i):
            for k in range(n_spans):
                with tracer.span(f"t{i}.{k}"):
                    pass
        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == n_threads * n_spans
        assert len({s.span_id for s in tracer.spans}) == n_threads * n_spans

    def test_phase_totals_union_per_category(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("a", 0.0, 2.0, category="io")
        tracer.record("b", 1.0, 3.0, category="io")  # overlaps a
        tracer.record("c", 0.0, 1.0, category="filter")
        totals = tracer.phase_totals()
        assert totals == pytest.approx({"io": 3.0, "filter": 1.0})


class TestNullTracer:
    def test_global_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_is_a_shared_singleton(self):
        a = NULL_TRACER.span("x", member=1)
        b = NULL_TRACER.span("y")
        assert a is b  # no allocations on the unguarded path

    def test_null_operations_are_noops(self):
        with NULL_TRACER.span("x") as span:
            span.set(bytes=1)
        assert NULL_TRACER.record("x", 0.0, 1.0) is None
        assert NULL_TRACER.event("x") is None

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_store_hot_path_records_nothing_when_disabled(self, tmp_path):
        import numpy as np

        from repro.core import Grid
        from repro.data.store import EnsembleStore

        grid = Grid(n_x=4, n_y=2)
        store = EnsembleStore(tmp_path, grid)
        values = np.arange(grid.n, dtype=float)
        store.write_member(0, values)
        assert store.read_member(0) == pytest.approx(values)
        tracer = Tracer()
        with use_tracer(tracer), use_metrics(MetricsRegistry()):
            store.read_member(0)
        names = [s.name for s in tracer.spans]
        assert names == ["store.read_member"]
        assert tracer.spans[0].attrs["bytes"] == values.nbytes


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("io.reads").inc()
        registry.counter("io.reads").inc(2)
        assert registry.counter("io.reads").value == 3.0
        with pytest.raises(ValueError):
            registry.counter("io.reads").inc(-1)

    def test_unset_gauge_omitted_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("cold")
        registry.gauge("warm").set(1.5)
        snap = registry.snapshot()
        assert snap["gauges"] == {"warm": 1.5}

    def test_histogram_bucket_edges(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0):
            h.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 99.0
        assert h.mean == pytest.approx(115.5 / 5)

    def test_histogram_bounds_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0, 10.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", bounds=(2.0, 20.0))

    def test_empty_histogram_mean_is_nan(self):
        registry = MetricsRegistry()
        assert math.isnan(registry.histogram("lat").mean)

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())

    def test_percentiles_interpolate_within_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(10.0, 20.0, 30.0))
        for value in (2.0, 12.0, 14.0, 22.0, 28.0):
            h.observe(value)
        p = h.percentiles()
        assert set(p) == {"p50", "p90", "p95", "p99"}
        # p50: target 2.5 of 5 with 1 below the (10, 20] bucket →
        # 1.5/2 of the way through it → 17.5
        assert p["p50"] == pytest.approx(17.5)
        # estimates never leave the observed range
        assert all(2.0 <= v <= 28.0 for v in p.values())
        assert p["p50"] <= p["p90"] <= p["p95"] <= p["p99"]

    def test_percentiles_of_single_observation_collapse(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(10.0,))
        h.observe(4.2)
        assert h.percentiles() == pytest.approx(
            {"p50": 4.2, "p90": 4.2, "p95": 4.2, "p99": 4.2}
        )

    def test_percentiles_clamped_to_observed_range_in_overflow(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(1.0,))
        for value in (50.0, 60.0, 70.0):  # all overflow
            h.observe(value)
        p = h.percentiles()
        assert all(50.0 <= v <= 70.0 for v in p.values())

    def test_percentiles_empty_and_invalid(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        assert h.percentiles() == {}
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentiles(quantiles=(1.5,))

    def test_snapshot_carries_percentiles_only_when_observed(self):
        registry = MetricsRegistry()
        registry.histogram("cold")
        registry.histogram("warm").observe(0.2)
        snap = registry.snapshot()
        assert "percentiles" not in snap["histograms"]["cold"]
        assert snap["histograms"]["warm"]["percentiles"]["p50"] == pytest.approx(0.2)
        json.dumps(snap)

    def test_use_metrics_scopes_global(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert get_metrics() is registry
            get_metrics().counter("x").inc()
        assert get_metrics() is not registry
        assert registry.counter("x").value == 1.0

    def test_use_thread_metrics_overrides_per_thread(self):
        """The thread-local override wins in its own thread only —
        the isolation that keeps concurrent service jobs' accounting
        from bleeding into each other."""
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        observed = {}

        def worker():
            with use_thread_metrics(theirs):
                get_metrics().counter("x").inc()
                observed["inside"] = get_metrics()

        with use_thread_metrics(mine):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert get_metrics() is mine
        assert observed["inside"] is theirs
        assert theirs.counter("x").value == 1.0
        assert mine.counter("x").value == 0.0

    def test_use_thread_metrics_nests_and_none_passes_through(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_thread_metrics(outer):
            with use_thread_metrics(inner):
                assert get_metrics() is inner
            assert get_metrics() is outer
            with use_thread_metrics(None):  # no-op scope
                assert get_metrics() is outer
        assert get_metrics() is not outer

    def test_snapshot_consistent_under_concurrent_writers(self):
        """snapshot() taken while 8 threads hammer all three metric
        kinds must be internally consistent (histogram bucket counts sum
        to its count) and the final tallies lossless."""
        registry = MetricsRegistry()
        n_threads, n_ops = 8, 200
        start = threading.Barrier(n_threads + 1)

        def work(tid):
            start.wait()
            for i in range(n_ops):
                registry.counter("c").inc()
                registry.gauge(f"g.{tid}").set(float(i))
                registry.histogram("h", bounds=(0.5,)).observe(i % 2)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        start.wait()
        for _ in range(20):  # snapshots taken mid-flight
            snap = registry.snapshot()
            hist = snap["histograms"].get("h")
            if hist:
                assert sum(hist["counts"]) == hist["count"]
            json.dumps(snap)
        for t in threads:
            t.join()
        final = registry.snapshot()
        assert final["counters"]["c"] == n_threads * n_ops
        assert final["histograms"]["h"]["count"] == n_threads * n_ops

    def test_percentiles_from_buckets_empty_and_single(self):
        assert percentiles_from_buckets([1.0], [0, 0], 0, math.inf, -math.inf) == {}
        p = percentiles_from_buckets([10.0], [1, 0], 1, 4.2, 4.2)
        assert p == pytest.approx(
            {"p50": 4.2, "p90": 4.2, "p95": 4.2, "p99": 4.2}
        )

    def test_percentiles_from_buckets_matches_live_histogram(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=(10.0, 20.0, 30.0))
        for value in (2.0, 12.0, 14.0, 22.0, 28.0):
            h.observe(value)
        assert percentiles_from_buckets(
            list(h.bounds), list(h.counts), h.count, h.min, h.max
        ) == pytest.approx(h.percentiles())

    def test_percentiles_from_buckets_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            percentiles_from_buckets([1.0], [1, 0], 1, 0.5, 0.5, (2.0,))


def _sample_tracer():
    tracer = Tracer(clock=FakeClock(step=0.5))
    with tracer.span("campaign", category="cycle", n_cycles=2):
        with tracer.span("cycle", category="cycle", cycle=0):
            with tracer.span("cycle.analysis", category="filter"):
                pass
        tracer.event("fault.injected", category="fault", member=1)
        tracer.record("fault.retry", 0.25, 0.75, category="fault", attempt=1)
    return tracer


class TestChromeExport:
    def test_round_trip_preserves_span_tree(self, tmp_path):
        tracer = _sample_tracer()
        path = write_chrome_trace(tmp_path / "trace.json", tracer=tracer)
        restored = spans_from_chrome(path)
        assert len(restored) == len(tracer.spans)
        original = {s.span_id: s for s in tracer.spans}
        t0 = min(s.start for s in tracer.spans)
        for span in restored:
            ref = original[span.span_id]
            assert span.name == ref.name
            assert span.category == ref.category
            assert span.parent_id == ref.parent_id
            assert span.track == ref.track
            assert span.start == pytest.approx(ref.start - t0, abs=1e-9)
            assert span.duration == pytest.approx(ref.duration, abs=1e-9)

    def test_round_trip_preserves_worker_tracks_and_nesting(self, tmp_path):
        """Multi-track captures — a dispatch span plus pool-worker spans
        merged onto ``worker-<pid>`` tracks, the process executor's shape —
        must survive export + re-import with track assignment and
        parentage intact."""
        tracer = Tracer(clock=FakeClock(step=0.25))
        with tracer.span("parallel.run", category="parallel"):
            for pid in (4001, 4002):
                for chunk in range(2):
                    t0 = tracer.now()
                    t1 = tracer.now()
                    tracer.record(
                        "parallel.local_analysis", t0, t1,
                        category="parallel", track=f"worker-{pid}",
                        chunk=chunk,
                    )
        path = write_chrome_trace(tmp_path / "workers.json", tracer=tracer)
        restored = {s.span_id: s for s in spans_from_chrome(path)}
        original = {s.span_id: s for s in tracer.spans}
        assert set(restored) == set(original)
        assert {s.track for s in restored.values()} == {
            "main", "worker-4001", "worker-4002",
        }
        run_span = next(
            s for s in restored.values() if s.name == "parallel.run"
        )
        workers = [
            s for s in restored.values()
            if s.track.startswith("worker-")
        ]
        assert len(workers) == 4
        for span in workers:
            ref = original[span.span_id]
            assert span.track == ref.track
            # worker spans stay parented under the dispatching span even
            # though they render on another track
            assert span.parent_id == run_span.span_id
            assert span.duration == pytest.approx(ref.duration, abs=1e-9)
        by_track = {}
        for span in sorted(workers, key=lambda s: s.start):
            by_track.setdefault(span.track, []).append(span.attrs["chunk"])
        assert by_track == {
            "worker-4001": [0, 1], "worker-4002": [0, 1],
        }

    def test_round_trip_from_json_string(self):
        tracer = _sample_tracer()
        payload = chrome_trace(spans=tracer.spans, events=tracer.events)
        restored = spans_from_chrome(json.dumps(payload))
        assert {s.name for s in restored} == {s.name for s in tracer.spans}

    def test_instant_events_exported(self):
        tracer = _sample_tracer()
        payload = chrome_trace(spans=tracer.spans, events=tracer.events)
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["fault.injected"]
        assert instants[0]["args"] == {"member": 1}

    def test_sim_timeline_lands_on_its_own_pid(self):
        from repro.sim.trace import PHASE_COMPUTE, PHASE_READ, Timeline

        timeline = Timeline()
        timeline.add(0, PHASE_READ, 0.0, 1.0)
        timeline.add(1, PHASE_COMPUTE, 0.5, 2.0)
        tracer = _sample_tracer()
        payload = chrome_trace(
            spans=tracer.spans, events=tracer.events, timeline=timeline
        )
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert pids == {REAL_PID, SIM_PID}
        sim = [
            e for e in payload["traceEvents"]
            if e["ph"] == "X" and e["pid"] == SIM_PID
        ]
        assert {e["name"] for e in sim} == {PHASE_READ, PHASE_COMPUTE}
        # ids stay disjoint from the real capture's
        real_ids = {s.span_id for s in tracer.spans}
        sim_ids = {e["args"]["span_id"] for e in sim}
        assert not real_ids & sim_ids

    def test_timeline_adapter_tracks_by_rank(self):
        from repro.sim.trace import PHASE_READ, Timeline

        timeline = Timeline()
        timeline.add(3, PHASE_READ, 0.0, 1.0)
        (span,) = spans_from_timeline(timeline)
        assert span.track == "rank 3"
        assert span.category == "sim"


class TestAsciiRendering:
    def test_render_spans_shows_nesting(self):
        tracer = _sample_tracer()
        out = render_spans(tracer.spans)
        assert "campaign" in out
        assert "  cycle" in out  # indented child

    def test_render_spans_truncates_with_note(self):
        tracer = Tracer(clock=FakeClock())
        for k in range(5):
            tracer.record(f"s{k}", float(k), k + 0.5)
        out = render_spans(tracer.spans, max_rows=2)
        assert "3 more spans not shown" in out

    def test_render_empty(self):
        assert "(no spans)" in render_spans([])
        assert "(no spans)" in render_phase_totals(Tracer())

    def test_render_timeline(self):
        from repro.sim.trace import PHASE_READ, Timeline

        timeline = Timeline()
        timeline.add(0, PHASE_READ, 0.0, 2.0)
        assert "read" in render_timeline(timeline)

    def test_render_phase_totals(self):
        out = render_phase_totals(_sample_tracer())
        assert "cycle" in out and "filter" in out and "fault" in out


class TestRunReport:
    def make(self):
        return RunReport(
            kind="twin-campaign",
            config={"experiment": "t"},
            seeds={"master_seed": 3},
            n_cycles=4,
            fault_counts={"retries": 2.0},
            phase_totals={"io": 0.5},
            metrics={"counters": {"io.reads": 4.0}},
            diagnostics={"analysis_rmse": [0.2, 0.1]},
            notes=["unit test"],
        )

    def test_write_and_reload(self, tmp_path):
        path = self.make().write(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        report = RunReport.from_dict(payload)
        assert report.kind == "twin-campaign"
        assert report.diagnostics["analysis_rmse"] == [0.2, 0.1]

    def test_validate_names_every_violation(self):
        payload = self.make().to_dict()
        del payload["seeds"]
        payload["n_cycles"] = "four"
        with pytest.raises(ValueError) as err:
            validate_run_report(payload)
        message = str(err.value)
        assert "seeds" in message and "n_cycles" in message

    def test_unknown_schema_rejected(self):
        payload = self.make().to_dict()
        payload["schema"] = "senkf-run-report/99"
        with pytest.raises(ValueError, match="unknown schema"):
            validate_run_report(payload)

    def test_negative_phase_total_rejected(self):
        payload = self.make().to_dict()
        payload["phase_totals"]["io"] = -1.0
        with pytest.raises(ValueError, match="phase_totals"):
            validate_run_report(payload)

    def test_ragged_diagnostics_rejected(self):
        payload = self.make().to_dict()
        payload["diagnostics"]["analysis_rmse"] = [0.1, "oops"]
        with pytest.raises(ValueError, match="diagnostics"):
            validate_run_report(payload)

    def test_invalid_report_never_hits_disk(self, tmp_path):
        report = self.make()
        report.n_cycles = -1
        target = tmp_path / "report.json"
        with pytest.raises(ValueError):
            report.write(target)
        assert not target.exists()


class TestWallTimer:
    def test_laps_sum_to_elapsed(self):
        from repro.util.timing import WallTimer

        with WallTimer() as timer:
            for _ in range(3):
                timer.lap()
        assert len(timer.laps) == 3
        assert sum(timer.laps) <= timer.elapsed
        assert timer.elapsed_ns >= 0
        assert timer.elapsed == pytest.approx(timer.elapsed_ns / 1e9)

    def test_lap_outside_context_raises(self):
        from repro.util.timing import WallTimer

        with pytest.raises(RuntimeError):
            WallTimer().lap()
