"""The tutorial (docs/TUTORIAL.md) must stay executable verbatim.

Each section's snippet, stitched in order — if an API change breaks the
walkthrough, this test points at the section to update.
"""

import numpy as np
import pytest


def test_tutorial_sections_run(tmp_path):
    # -- 1. one analysis step ------------------------------------------------
    from repro.core import analysis_gain_form, perturb_observations

    rng = np.random.default_rng(0)
    n, n_members, m = 50, 20, 25
    truth = rng.normal(size=n)
    forecast = truth + rng.normal(0, 1.0, size=n)
    states = forecast[:, None] + rng.normal(0, 1.0, size=(n, n_members))
    h = np.eye(n)[:m]
    sigma = 0.3
    y = h @ truth + rng.normal(0, sigma, m)
    ys = perturb_observations(y, sigma, n_members, rng=rng)
    xa = analysis_gain_form(states, h, np.full(m, sigma**2), ys)
    # Error shrinks where we observe (the unobserved half is untouched up
    # to sampled cross-correlations).
    assert np.abs((h @ xa.mean(1)) - h @ truth).mean() < \
        np.abs((h @ states.mean(1)) - h @ truth).mean()

    from repro.core import Grid, analysis_precision_form, modified_cholesky_inverse

    grid1 = Grid(n_x=50, n_y=1, periodic_x=False)
    binv = modified_cholesky_inverse(
        states, grid1, np.arange(n), np.zeros(n, int), radius_km=3.0
    )
    xa2 = analysis_precision_form(states, h, np.full(m, sigma**2), ys, binv)
    assert np.all(np.isfinite(xa2))

    # -- 2. decomposition ------------------------------------------------------
    from repro.core import Decomposition, ObservationNetwork, radius_to_halo
    from repro.filters import PEnKF
    from repro.models import correlated_ensemble

    grid = Grid(n_x=48, n_y=24, dx_km=2.5, dy_km=5.0)
    xi, eta = radius_to_halo(10.0, grid.dx_km, grid.dy_km)
    assert (xi, eta) == (4, 2)
    decomp = Decomposition(grid, n_sdx=4, n_sdy=2, xi=xi, eta=eta)
    rng = np.random.default_rng(1)
    truth = correlated_ensemble(grid, 1, length_scale_km=12.0, rng=rng)[:, 0]
    states = truth[:, None] + correlated_ensemble(
        grid, 30, length_scale_km=12.0, std=0.5, rng=rng
    )
    net = ObservationNetwork.random(grid, m=150, obs_error_std=0.2, rng=rng)
    y = net.observe(truth, rng=rng)
    filt = PEnKF(radius_km=10.0, ridge=1e-2)
    filt.assimilate(decomp, states, net, y, rng=2)

    # -- 3. cycling -------------------------------------------------------------
    from repro.models import AdvectionDiffusionModel, TwinExperiment

    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    twin = TwinExperiment(
        model,
        net,
        lambda s, obs, r: filt.assimilate(decomp, s, net, obs, rng=r),
        steps_per_cycle=5,
    )
    result = twin.run(truth, states, n_cycles=3)
    assert result.n_cycles == 3

    # -- 4. files ------------------------------------------------------------------
    from repro.data import EnsembleStore, read_plan_from_disk
    from repro.io import block_read_plan

    store = EnsembleStore(tmp_path / "ens", grid)
    store.write_ensemble(states)
    plan = block_read_plan(decomp, store.layout, n_files=30)
    assert plan.total_seeks > 0
    read_plan_from_disk(plan, store)

    # -- 5. simulation ----------------------------------------------------------------
    from repro.cluster import MachineSpec
    from repro.filters import (
        PerfScenario,
        simulate_penkf,
        simulate_senkf_autotuned,
    )

    spec = MachineSpec.small_cluster()
    scenario = PerfScenario.small()
    p = simulate_penkf(spec, scenario, n_sdx=60, n_sdy=12)
    s, tuned = simulate_senkf_autotuned(spec, scenario, n_p=720)
    assert s.total_time < p.total_time
    assert tuned.total_processors <= 720

    # -- 6. tuning ------------------------------------------------------------------------
    from repro.tuning import autotune, solve_optimization_model

    params = scenario.cost_params(spec)
    assert solve_optimization_model(params, c1=24, c2=240) is not None
    assert autotune(params, n_p=720, epsilon=1e-3) is not None
