"""Tests for verification metrics: RMSE, spread, CRPS, rank histograms."""

import numpy as np
import pytest

from repro.core.verification import (
    crps,
    crps_mean,
    ensemble_spread,
    error_reduction,
    rank_histogram,
    rmse,
)


class TestRmseSpread:
    def test_rmse_zero_for_identical(self):
        x = np.arange(5.0)
        assert rmse(x, x) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 1.0]), np.array([0.0, 0.0])) == 1.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_spread_matches_std(self):
        rng = np.random.default_rng(0)
        states = rng.normal(0, 2.0, size=(2000, 50))
        assert ensemble_spread(states) == pytest.approx(2.0, rel=0.05)

    def test_spread_needs_two_members(self):
        with pytest.raises(ValueError):
            ensemble_spread(np.zeros((5, 1)))

    def test_error_reduction(self):
        assert error_reduction(2.0, 1.0) == 0.5
        with pytest.raises(ValueError):
            error_reduction(0.0, 1.0)


class TestCrps:
    def test_deterministic_forecast_is_absolute_error(self):
        assert crps(np.array([3.0]), observation=1.0) == pytest.approx(2.0)

    def test_perfect_ensemble_scores_low(self):
        good = crps(np.array([0.9, 1.0, 1.1]), observation=1.0)
        bad = crps(np.array([4.9, 5.0, 5.1]), observation=1.0)
        assert good < bad

    def test_sharpness_rewarded_when_centred(self):
        rng = np.random.default_rng(1)
        sharp = crps(rng.normal(0, 0.5, 200), observation=0.0)
        blunt = crps(rng.normal(0, 3.0, 200), observation=0.0)
        assert sharp < blunt

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crps(np.array([]), 0.0)

    def test_crps_mean_matches_scalar_crps(self):
        rng = np.random.default_rng(2)
        states = rng.normal(size=(6, 25))
        truth = rng.normal(size=6)
        per_component = np.mean(
            [crps(states[i], truth[i]) for i in range(6)]
        )
        assert crps_mean(states, truth) == pytest.approx(per_component)

    def test_crps_mean_shape_check(self):
        with pytest.raises(ValueError):
            crps_mean(np.zeros((3, 4)), np.zeros(5))

    def test_crps_nonnegative(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            val = crps(rng.normal(size=20), rng.normal())
            assert val >= -1e-12


class TestRankHistogram:
    def test_counts_sum_to_components(self):
        rng = np.random.default_rng(4)
        states = rng.normal(size=(500, 9))
        truth = rng.normal(size=500)
        hist = rank_histogram(states, truth)
        assert hist.shape == (10,)
        assert hist.sum() == 500

    def test_reliable_ensemble_is_flat(self):
        """Truth drawn from the same distribution => uniform ranks."""
        rng = np.random.default_rng(5)
        states = rng.normal(size=(20000, 9))
        truth = rng.normal(size=20000)
        hist = rank_histogram(states, truth)
        expected = 20000 / 10
        assert np.all(np.abs(hist - expected) < 0.15 * expected)

    def test_underdispersed_is_u_shaped(self):
        rng = np.random.default_rng(6)
        states = rng.normal(0, 0.2, size=(5000, 9))  # too little spread
        truth = rng.normal(0, 1.0, size=5000)
        hist = rank_histogram(states, truth)
        assert hist[0] + hist[-1] > 3 * hist[4]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rank_histogram(np.zeros((3, 4)), np.zeros(5))
