"""Smoke tests: the shipped examples must run end-to-end.

The two long-running examples (scaling_study sweeps to 1,200 simulated
ranks; ocean_reanalysis cycles two filters 15 times) are exercised by the
benchmark/figure suites; here we run the fast ones by importing their
``main``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize(
    "name",
    ["quickstart", "autotuning_demo", "reading_strategies",
     "shallow_water_assim"],
)
def test_fast_examples_run(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert len(out) > 100  # every example prints a report


def test_examples_directory_complete():
    present = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart",
        "ocean_reanalysis",
        "scaling_study",
        "autotuning_demo",
        "reading_strategies",
        "shallow_water_assim",
    } <= present
