"""Tests for the utility layer: validation, seeding, timing."""

import numpy as np
import pytest

from repro.util import (
    SeedSequenceFactory,
    WallTimer,
    check_divides,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_shape,
    check_type,
    spawn_rng,
)


class TestValidators:
    def test_check_type_ok(self):
        check_type("x", 3, int)
        check_type("x", 3, (int, float))

    def test_check_type_fails_with_names(self):
        with pytest.raises(TypeError, match="x must be of type int"):
            check_type("x", "3", int)
        with pytest.raises(TypeError, match="int, float"):
            check_type("x", "3", (int, float))

    def test_check_positive(self):
        check_positive("n", 1)
        with pytest.raises(ValueError, match="n must be positive"):
            check_positive("n", 0)

    def test_check_nonnegative(self):
        check_nonnegative("n", 0)
        with pytest.raises(ValueError):
            check_nonnegative("n", -1e-9)

    def test_check_in_range_inclusive(self):
        check_in_range("x", 0.5, 0.0, 1.0)
        check_in_range("x", 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", -0.1, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.1, 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError, match=">"):
            check_in_range("x", 0.0, 0.0, 1.0, low_inclusive=False)
        with pytest.raises(ValueError, match="<"):
            check_in_range("x", 1.0, 0.0, 1.0, high_inclusive=False)

    def test_check_divides(self):
        check_divides("n_x", 12, "n_sdx", 4)
        with pytest.raises(ValueError, match="must divide"):
            check_divides("n_x", 12, "n_sdx", 5)
        with pytest.raises(ValueError):
            check_divides("n_x", 12, "n_sdx", 0)

    def test_check_shape(self):
        check_shape("a", np.zeros((3, 4)), (3, 4))
        check_shape("a", np.zeros((3, 4)), (3, None))
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((3, 4)), (4, 3))
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (3, 1))


class TestSeeding:
    def test_same_key_same_stream(self):
        f = SeedSequenceFactory(master_seed=7)
        a = f.rng("obs").normal(size=5)
        b = f.rng("obs").normal(size=5)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        f = SeedSequenceFactory(master_seed=7)
        a = f.rng("obs").normal(size=100)
        b = f.rng("members").normal(size=100)
        assert not np.array_equal(a, b)

    def test_indices_distinguish(self):
        f = SeedSequenceFactory(master_seed=7)
        a = f.rng("member", 1).normal(size=100)
        b = f.rng("member", 2).normal(size=100)
        assert not np.array_equal(a, b)

    def test_master_seed_distinguishes(self):
        a = SeedSequenceFactory(1).rng("x").normal(size=100)
        b = SeedSequenceFactory(2).rng("x").normal(size=100)
        assert not np.array_equal(a, b)

    def test_streams_approximately_independent(self):
        f = SeedSequenceFactory(0)
        a = f.rng("a").normal(size=5000)
        b = f.rng("b").normal(size=5000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.05

    def test_spawn_rng_coercions(self):
        gen = np.random.default_rng(0)
        assert spawn_rng(gen) is gen
        assert isinstance(spawn_rng(42), np.random.Generator)
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_spawn_rng_seed_reproducible(self):
        assert spawn_rng(42).normal() == spawn_rng(42).normal()


class TestWallTimer:
    def test_measures_nonnegative(self):
        with WallTimer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_elapsed_grows_with_work(self):
        import time

        with WallTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005
