"""Tests for the simulated orchestrations of L-EnKF, P-EnKF and S-EnKF."""

import pytest

from repro.cluster import MachineSpec
from repro.filters import (
    PerfScenario,
    simulate_lenkf,
    simulate_penkf,
    simulate_senkf,
    simulate_senkf_autotuned,
)
from repro.sim.trace import PHASE_COMM, PHASE_COMPUTE, PHASE_READ, PHASE_WAIT


def tiny_scenario(**kw):
    defaults = dict(n_x=48, n_y=24, n_members=8, h_bytes=240, xi=2, eta=1)
    defaults.update(kw)
    return PerfScenario(**defaults)


def spec(**kw):
    defaults = dict(
        alpha=1e-5,
        beta=1e-9,
        theta=5e-9,
        c_point=1e-5,
        seek_time=1e-3,
        n_storage_nodes=4,
        disk_concurrency=4,
    )
    defaults.update(kw)
    return MachineSpec(**defaults)


class TestScenario:
    def test_paper_preset(self):
        s = PerfScenario.paper()
        assert (s.n_x, s.n_y, s.n_members) == (3600, 1800, 120)
        assert s.file_bytes == 3600 * 1800 * 240

    def test_small_preset_valid(self):
        s = PerfScenario.small()
        assert s.total_bytes > 0

    def test_with_override(self):
        s = PerfScenario.small().with_(n_members=48)
        assert s.n_members == 48

    def test_invalid(self):
        with pytest.raises(ValueError):
            tiny_scenario(n_members=0)


class TestPEnKFSimulation:
    def test_produces_report(self):
        report = simulate_penkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        assert report.filter_name == "p-enkf"
        assert report.total_time > 0
        assert len(report.compute_ranks) == 12
        assert report.io_ranks == []

    def test_phases_present(self):
        report = simulate_penkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        means = report.mean_phase_times("compute")
        assert means[PHASE_READ] > 0
        assert means[PHASE_COMPUTE] > 0

    def test_no_overlap_read_before_compute(self):
        """P-EnKF's defect: every rank's compute starts after ALL its reads."""
        report = simulate_penkf(spec(), tiny_scenario(), n_sdx=2, n_sdy=2)
        for rank in report.compute_ranks:
            reads = report.timeline.intervals(PHASE_READ, ranks=[rank])
            comps = report.timeline.intervals(PHASE_COMPUTE, ranks=[rank])
            assert max(e for _, e in reads) <= min(s for s, _ in comps) + 1e-12

    def test_read_time_grows_with_ranks(self):
        """Fig. 1 / Fig. 13 driver: more ranks => more seeks => slower reads."""
        scenario = tiny_scenario()
        small = simulate_penkf(spec(), scenario, n_sdx=2, n_sdy=2)
        large = simulate_penkf(spec(), scenario, n_sdx=8, n_sdy=2)
        read_small = small.mean_phase_times("compute")[PHASE_READ]
        read_large = large.mean_phase_times("compute")[PHASE_READ]
        # Per-rank read volume shrinks but total seeks grow; with a
        # seek-dominated machine, per-rank read+wait time must not shrink
        # proportionally to compute.
        assert large.io_fraction() > small.io_fraction()

    def test_deterministic(self):
        a = simulate_penkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        b = simulate_penkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        assert a.total_time == b.total_time


class TestLEnKFSimulation:
    def test_produces_report(self):
        report = simulate_lenkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        assert report.filter_name == "l-enkf"
        assert report.total_time > 0

    def test_rank0_reads_and_communicates(self):
        report = simulate_lenkf(spec(), tiny_scenario(), n_sdx=4, n_sdy=3)
        assert report.timeline.total(PHASE_READ, rank=0) > 0
        assert report.timeline.total(PHASE_COMM, rank=0) > 0
        # Non-root ranks never read.
        assert report.timeline.total(PHASE_READ, rank=1) == 0

    def test_scatter_cost_grows_with_ranks(self):
        scenario = tiny_scenario()
        small = simulate_lenkf(spec(), scenario, n_sdx=2, n_sdy=2)
        large = simulate_lenkf(spec(), scenario, n_sdx=8, n_sdy=3)
        comm_small = small.timeline.total(PHASE_COMM, rank=0)
        comm_large = large.timeline.total(PHASE_COMM, rank=0)
        assert comm_large > comm_small


class TestSEnKFSimulation:
    def run(self, machine=None, **kw):
        args = dict(n_sdx=4, n_sdy=3, n_layers=2, n_cg=2)
        args.update(kw)
        return simulate_senkf(machine or spec(), tiny_scenario(), **args)

    def test_produces_report(self):
        report = self.run()
        assert report.filter_name == "s-enkf"
        assert len(report.compute_ranks) == 12
        assert len(report.io_ranks) == 2 * 3
        assert report.n_processors == 18

    def test_io_ranks_read_compute_ranks_do_not(self):
        report = self.run()
        for rank in report.io_ranks:
            assert report.timeline.total(PHASE_READ, rank=rank) > 0
        for rank in report.compute_ranks:
            assert report.timeline.total(PHASE_READ, rank=rank) == 0

    def test_compute_ranks_compute_per_stage(self):
        report = self.run(n_layers=4)
        rank = report.compute_ranks[0]
        comps = report.timeline.intervals(PHASE_COMPUTE, ranks=[rank])
        assert len(comps) == 4

    def test_divisibility_checks(self):
        with pytest.raises(ValueError):
            self.run(n_cg=3)  # 8 members not divisible by 3
        with pytest.raises(ValueError):
            self.run(n_layers=3)  # block rows 8 not divisible by 3

    def test_overlap_hides_io(self):
        """The whole point: with per-stage computation just above the
        per-stage I/O, S-EnKF hides reads behind analyses and the
        overlapped fraction is substantial.  (The fraction is bounded by
        the I/O share of the runtime: a run with negligible I/O has
        nothing to hide.)"""
        report = self.run(
            machine=spec(c_point=2e-3, seek_time=5e-3, theta=5e-8),
            n_layers=4,
            n_cg=2,
        )
        assert report.overlap_fraction() > 0.2

    def test_senkf_beats_penkf_on_seek_dominated_machine(self):
        """Fig. 9/13 headline at miniature scale."""
        scenario = tiny_scenario(n_members=8)
        machine = spec(seek_time=5e-3, c_point=2e-5)
        p = simulate_penkf(machine, scenario, n_sdx=8, n_sdy=3)
        s = simulate_senkf(machine, scenario, n_sdx=8, n_sdy=3,
                           n_layers=2, n_cg=2)
        assert s.total_time < p.total_time

    def test_first_stage_wait_exposed_later_hidden(self):
        """Only stage 0's data wait should be large; later stages arrive
        while computing (Sec. 5.4: the non-overlappable first read)."""
        report = self.run(machine=spec(c_point=2e-3), n_layers=4, n_cg=2)
        rank = report.compute_ranks[0]
        waits = report.timeline.intervals(PHASE_WAIT, ranks=[rank])
        durations = [e - s for s, e in waits]
        assert durations[0] == max(durations)
        # Later stages' waits are negligible next to the first.
        assert all(d < 0.2 * durations[0] for d in durations[1:])

    def test_deterministic(self):
        a = self.run()
        b = self.run()
        assert a.total_time == b.total_time


class TestAutotunedSEnKF:
    def test_runs_and_respects_budget(self):
        report, tuned = simulate_senkf_autotuned(
            spec(), tiny_scenario(), n_p=24, epsilon=1e-3
        )
        assert report.n_processors <= 24
        assert tuned.total_processors == report.n_processors

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError):
            simulate_senkf_autotuned(spec(), tiny_scenario(), n_p=1)


class TestPrefetchDepth:
    """Bounded staging buffers (flow control) in the S-EnKF simulation."""

    def machine(self):
        return spec(c_point=2e-3, seek_time=5e-3, theta=5e-8)

    def test_unbounded_is_default(self):
        a = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4, n_sdy=3,
                           n_layers=4, n_cg=2)
        b = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4, n_sdy=3,
                           n_layers=4, n_cg=2, prefetch_depth=None)
        assert a.total_time == b.total_time

    def test_depth_one_never_faster_than_unbounded(self):
        free = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4,
                              n_sdy=3, n_layers=4, n_cg=2)
        tight = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4,
                               n_sdy=3, n_layers=4, n_cg=2, prefetch_depth=1)
        assert tight.total_time >= free.total_time

    def test_large_depth_recovers_unbounded(self):
        free = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4,
                              n_sdy=3, n_layers=4, n_cg=2)
        deep = simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4,
                              n_sdy=3, n_layers=4, n_cg=2, prefetch_depth=4)
        assert deep.total_time == pytest.approx(free.total_time)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4, n_sdy=3,
                           n_layers=2, n_cg=2, prefetch_depth=0)

    def test_monotone_in_depth(self):
        times = [
            simulate_senkf(self.machine(), tiny_scenario(), n_sdx=4, n_sdy=3,
                           n_layers=4, n_cg=2, prefetch_depth=d).total_time
            for d in (1, 2, 3, 4)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
