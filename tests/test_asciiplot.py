"""Tests for the terminal plotting helpers."""

import pytest

from repro.experiments.asciiplot import bar_chart, line_chart, plot_figure
from repro.experiments.result import FigureResult


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = line_chart([1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=6)
        assert "o" in out
        assert "o=a" in out

    def test_multiple_series_distinct_markers(self):
        out = line_chart(
            [1, 2], {"first": [1.0, 2.0], "second": [2.0, 1.0]},
            width=20, height=6,
        )
        assert "o=first" in out and "x=second" in out
        assert "o" in out and "x" in out

    def test_axis_labels_present(self):
        out = line_chart([10, 50], {"s": [0.5, 2.5]}, width=20, height=6)
        assert "10" in out and "50" in out
        assert "2.5" in out and "0.5" in out

    def test_constant_series_ok(self):
        out = line_chart([1, 2], {"s": [3.0, 3.0]}, width=10, height=4)
        assert "o" in out

    def test_title_included(self):
        out = line_chart([1], {"s": [1.0]}, title="My Title")
        assert out.startswith("My Title")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([], {})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})

    def test_extremes_mapped_to_edges(self):
        out = line_chart([0, 100], {"s": [0.0, 10.0]}, width=30, height=8)
        body = [l for l in out.splitlines() if "|" in l]
        # max value on the top row, min on the bottom row.
        assert "o" in body[0]
        assert "o" in body[-1]


class TestBarChart:
    def test_bars_scale_with_values(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        lines = out.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_values_printed(self):
        out = bar_chart(["x"], [3.25], width=10)
        assert "3.25" in out

    def test_zero_values_ok(self):
        out = bar_chart(["a", "b"], [0.0, 0.0], width=10)
        assert "a" in out and "b" in out

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestPlotFigure:
    def make_result(self, name, columns, rows):
        return FigureResult(
            name=name, title="t", claim="c", columns=columns, rows=rows
        )

    def test_fig01_layout(self):
        result = self.make_result(
            "fig01",
            ["n_p", "io_percent", "compute_percent", "total_time"],
            [
                {"n_p": 10, "io_percent": 20.0, "compute_percent": 80.0,
                 "total_time": 1.0},
                {"n_p": 20, "io_percent": 60.0, "compute_percent": 40.0,
                 "total_time": 1.2},
            ],
        )
        out = plot_figure(result)
        assert "I/O share" in out

    def test_fig13_layout(self):
        result = self.make_result(
            "fig13",
            ["n_p", "penkf_time", "senkf_time", "speedup", "senkf_c1",
             "senkf_c2"],
            [
                {"n_p": 10, "penkf_time": 2.0, "senkf_time": 1.5,
                 "speedup": 1.3, "senkf_c1": 2, "senkf_c2": 8},
                {"n_p": 20, "penkf_time": 2.5, "senkf_time": 0.9,
                 "speedup": 2.8, "senkf_c1": 4, "senkf_c2": 16},
            ],
        )
        out = plot_figure(result)
        assert "P-EnKF" in out and "S-EnKF" in out

    def test_unknown_figure_rejected(self):
        result = self.make_result("fig99", ["a"], [{"a": 1}])
        with pytest.raises(KeyError):
            plot_figure(result)

    @pytest.mark.parametrize("name", ["fig05", "fig10", "fig11"])
    def test_simple_layouts_from_real_runners(self, name):
        """Render the real (micro-config) results without error."""
        from repro.cluster import MachineSpec
        from repro.experiments import ExperimentConfig, FIGURES
        from repro.filters import PerfScenario

        config = ExperimentConfig(
            full=False,
            spec=MachineSpec.small_cluster(),
            scenario=PerfScenario(n_x=96, n_y=48, n_members=8, h_bytes=240,
                                  xi=2, eta=1),
            scaling_configs=((4, 4), (8, 4)),
            fig5_n_sdx=(4, 8, 16),
            fig5_n_sdy=4,
            fig5_members=8,
            fig10_groups=(1, 2, 4),
            fig12_c2=16,
        )
        result = FIGURES[name](config)
        out = plot_figure(result)
        # One rendered line per data row (bar charts) or a full canvas.
        assert len(out.splitlines()) > len(result.rows)
