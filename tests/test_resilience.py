"""Resilience tests for the real-file path and degraded-mode analysis.

Covers :class:`FaultyStore` (injected transient failures and physical
corruption), the resilient readers (retry-until-clean, member dropping),
typed corruption detection in the genuine store, graceful degradation in
the filters (bit-identity of the compensated ``N - k`` analysis), and the
hypothesis property that all four reading strategies deliver byte-identical
data when their reads go through the retry loop.
"""

import math
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Decomposition, Grid
from repro.core.observations import ObservationNetwork
from repro.data.store import EnsembleStore, read_plan_from_disk
from repro.faults import (
    CorruptMemberError,
    FaultSchedule,
    FaultyStore,
    MemberUnrecoverableError,
    ResilienceReport,
    RetryPolicy,
    read_ensemble_resilient,
    read_plan_from_disk_resilient,
)
from repro.filters.distributed import DistributedEnKF
from repro.io import (
    bar_read_plan,
    block_read_plan,
    concurrent_access_plan,
    single_reader_plan,
)

N_MEMBERS = 6


@pytest.fixture
def grid():
    return Grid(n_x=12, n_y=8)


@pytest.fixture
def store(tmp_path, grid):
    return EnsembleStore(tmp_path / "ens", grid)


@pytest.fixture
def states(grid):
    rng = np.random.default_rng(0)
    return rng.standard_normal((grid.n, N_MEMBERS))


@pytest.fixture
def filled(store, states):
    store.write_ensemble(states)
    return store


# ---------------------------------------------------------------------------
# FaultyStore
# ---------------------------------------------------------------------------
class TestFaultyStore:
    def test_transient_failures_then_clean_data(self, filled, states):
        sched = FaultSchedule(seed=0, member_fault_rate=1.0,
                              member_fault_attempts=2)
        faulty = FaultyStore(filled, sched)
        got, surviving, dropped = read_ensemble_resilient(
            faulty, retry=RetryPolicy(max_retries=3), report=faulty.report
        )
        assert dropped == []
        assert surviving == list(range(N_MEMBERS))
        assert np.array_equal(got, states)
        # Two injected failures per member, each retried once.
        assert faulty.report.retries == 2 * N_MEMBERS
        assert faulty.report.disk_faults == 2 * N_MEMBERS

    def test_retries_exhausted_drops_members(self, filled):
        sched = FaultSchedule(seed=0, member_fault_rate=1.0,
                              member_fault_attempts=5)
        faulty = FaultyStore(filled, sched)
        with pytest.raises(MemberUnrecoverableError):
            read_ensemble_resilient(faulty, retry=RetryPolicy(max_retries=1))

    def test_corruption_damages_real_bytes(self, filled):
        sched = FaultSchedule(seed=3, member_corrupt_rate=0.5)
        corrupt = [k for k in range(N_MEMBERS) if sched.member_corrupt(k)]
        assert corrupt, "seed must corrupt at least one member for this test"
        faulty = FaultyStore(filled, sched)
        with pytest.raises((CorruptMemberError, MemberUnrecoverableError)):
            for k in corrupt:
                faulty.read_member(k)
        # The file itself was truncated: even the genuine store now sees it.
        with pytest.raises(CorruptMemberError):
            filled.read_member(corrupt[0])

    def test_deterministic_same_seed(self, filled):
        def run():
            sched = FaultSchedule(seed=8, member_fault_rate=0.5,
                                  member_fault_attempts=1)
            faulty = FaultyStore(filled, sched)
            _, surviving, dropped = read_ensemble_resilient(
                faulty, retry=RetryPolicy(max_retries=2)
            )
            return surviving, dropped, faulty.report.retries

        assert run() == run()


# ---------------------------------------------------------------------------
# Resilient readers: degradation
# ---------------------------------------------------------------------------
class TestResilientReaders:
    def test_corrupt_member_dropped_survivors_intact(self, filled, states):
        sched = FaultSchedule(seed=3, member_corrupt_rate=0.5)
        corrupt = sorted(k for k in range(N_MEMBERS) if sched.member_corrupt(k))
        assert 0 < len(corrupt) <= N_MEMBERS - 2
        faulty = FaultyStore(filled, sched)
        got, surviving, dropped = read_ensemble_resilient(
            faulty, retry=RetryPolicy(max_retries=2), report=faulty.report
        )
        assert dropped == corrupt
        assert surviving == [k for k in range(N_MEMBERS) if k not in corrupt]
        assert np.array_equal(got, states[:, surviving])
        assert faulty.report.members_dropped == corrupt

    def test_plan_reader_drops_member_everywhere(self, filled, states, grid):
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        plan = bar_read_plan(decomp, filled.layout, n_files=N_MEMBERS)
        sched = FaultSchedule(seed=3, member_corrupt_rate=0.5)
        corrupt = sorted(k for k in range(N_MEMBERS) if sched.member_corrupt(k))
        faulty = FaultyStore(filled, sched)
        report = ResilienceReport()
        out, dropped = read_plan_from_disk_resilient(
            plan, faulty, retry=RetryPolicy(max_retries=2), report=report
        )
        assert dropped == corrupt
        clean = read_plan_from_disk(plan, filled_clean(filled, states))
        for rank, per_file in out.items():
            assert set(per_file) == set(clean[rank]) - set(corrupt)
            for f, values in per_file.items():
                assert np.array_equal(values, clean[rank][f])

    def test_clean_store_passthrough(self, filled, states, grid):
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        plan = block_read_plan(decomp, filled.layout, n_files=N_MEMBERS)
        out, dropped = read_plan_from_disk_resilient(plan, filled)
        assert dropped == []
        clean = read_plan_from_disk(plan, filled)
        for rank, per_file in clean.items():
            for f, values in per_file.items():
                assert np.array_equal(out[rank][f], values)


def filled_clean(filled, states):
    """Rewrite any physically corrupted members so the clean reference reads."""
    for k in range(states.shape[1]):
        path = filled.member_path(k)
        if not path.exists() or path.stat().st_size != states.shape[0] * 8:
            filled.write_member(k, states[:, k])
    return filled


# ---------------------------------------------------------------------------
# Typed corruption detection in the genuine store
# ---------------------------------------------------------------------------
class TestStoreCorruptionDetection:
    def test_truncated_member_read_raises_typed_error(self, filled):
        path = filled.member_path(2)
        with open(path, "r+b") as fh:
            fh.truncate(path.stat().st_size // 2)
        with pytest.raises(CorruptMemberError) as err:
            filled.read_member(2)
        assert err.value.member == 2
        # CorruptMemberError stays a ValueError for legacy handlers.
        with pytest.raises(ValueError):
            filled.read_member(2)

    def test_extent_beyond_truncated_file(self, filled, grid):
        path = filled.member_path(1)
        with open(path, "r+b") as fh:
            fh.truncate(3 * 8)  # three values left
        with pytest.raises(CorruptMemberError):
            filled.read_extents(1, [(0, grid.n)])
        # Extents inside the surviving prefix still read fine.
        assert filled.read_extents(1, [(0, 3)]).shape == (3,)

    def test_logical_out_of_range_stays_value_error(self, filled, grid):
        with pytest.raises(ValueError):
            filled.read_extents(0, [(0, grid.n + 1)])
        with pytest.raises(ValueError):
            filled.read_extents(0, [(-1, 2)])


# ---------------------------------------------------------------------------
# Graceful degradation in the filters
# ---------------------------------------------------------------------------
class TestDegradedAnalysis:
    def setup_problem(self, grid):
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        network = ObservationNetwork.regular(
            grid, every_x=3, every_y=2, obs_error_std=0.5
        )
        rng = np.random.default_rng(7)
        y = rng.standard_normal(network.m)
        return decomp, network, y

    def test_bit_identical_to_clean_surviving_run(self, grid, states):
        decomp, network, y = self.setup_problem(grid)
        f = DistributedEnKF(radius_km=800.0, inflation=1.05)
        dropped = (1, 4)
        surviving = [k for k in range(N_MEMBERS) if k not in dropped]
        analysed, result = f.assimilate_degraded(
            decomp, states, network, y, dropped=dropped,
            rng=np.random.default_rng(99),
        )
        compensation = math.sqrt((N_MEMBERS - 1) / (len(surviving) - 1))
        reference = DistributedEnKF(
            radius_km=800.0, inflation=1.05 * compensation
        ).assimilate(
            decomp, states[:, surviving], network, y,
            rng=np.random.default_rng(99),
        )
        assert np.array_equal(analysed, reference)
        assert result.degraded
        assert result.compensation == pytest.approx(compensation)
        assert result.surviving == tuple(surviving)
        assert result.dropped == dropped

    def test_no_drop_is_plain_assimilate(self, grid, states):
        decomp, network, y = self.setup_problem(grid)
        f = DistributedEnKF(radius_km=800.0, inflation=1.05)
        analysed, result = f.assimilate_degraded(
            decomp, states, network, y, rng=np.random.default_rng(5)
        )
        reference = f.assimilate(
            decomp, states, network, y, rng=np.random.default_rng(5)
        )
        assert np.array_equal(analysed, reference)
        assert not result.degraded
        assert result.compensation == 1.0

    def test_degraded_does_not_mutate_filter(self, grid, states):
        decomp, network, y = self.setup_problem(grid)
        f = DistributedEnKF(radius_km=800.0, inflation=1.05)
        f.assimilate_degraded(decomp, states, network, y, dropped=(0,))
        assert f.inflation == 1.05

    def test_too_few_survivors_rejected(self, grid, states):
        decomp, network, y = self.setup_problem(grid)
        f = DistributedEnKF(radius_km=800.0)
        with pytest.raises(ValueError, match="surviving"):
            f.assimilate_degraded(
                decomp, states, network, y, dropped=tuple(range(N_MEMBERS - 1))
            )
        with pytest.raises(ValueError, match="out of range"):
            f.assimilate_degraded(decomp, states, network, y, dropped=(99,))

    def test_end_to_end_faulty_store_to_degraded_analysis(
        self, filled, states, grid
    ):
        decomp, network, y = self.setup_problem(grid)
        sched = FaultSchedule(seed=3, member_corrupt_rate=0.5)
        faulty = FaultyStore(filled, sched)
        got, surviving, dropped = read_ensemble_resilient(
            faulty, retry=RetryPolicy(max_retries=2)
        )
        f = DistributedEnKF(radius_km=800.0, inflation=1.02)
        analysed, result = f.assimilate_degraded(
            decomp, states, network, y, dropped=dropped,
            rng=np.random.default_rng(1),
        )
        # The surviving columns read from disk are exactly the columns the
        # degraded analysis used.
        assert np.array_equal(got, states[:, surviving])
        assert analysed.shape == (grid.n, len(surviving))
        assert result.dropped == tuple(dropped)


# ---------------------------------------------------------------------------
# Property: all four strategies byte-identical under retries
# ---------------------------------------------------------------------------
class TestStrategyEquivalenceUnderFaults:
    STRATEGIES = (
        ("single_reader", lambda d, l, n: single_reader_plan(d, l, n)),
        ("block", lambda d, l, n: block_read_plan(d, l, n)),
        ("bar", lambda d, l, n: bar_read_plan(d, l, n)),
        ("concurrent", lambda d, l, n: concurrent_access_plan(d, l, n, n_cg=2)),
    )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32),
        rate=st.floats(0.1, 1.0, allow_nan=False),
    )
    def test_resilient_reads_byte_identical_across_strategies(self, seed, rate):
        grid = Grid(n_x=12, n_y=6)
        decomp = Decomposition(grid, n_sdx=2, n_sdy=2, xi=1, eta=1)
        rng = np.random.default_rng(seed)
        states = rng.standard_normal((grid.n, 4))
        with tempfile.TemporaryDirectory() as tmp:
            store = EnsembleStore(Path(tmp) / "ens", grid)
            store.write_ensemble(states)
            sched = FaultSchedule(seed=seed, member_fault_rate=rate,
                                  member_fault_attempts=1)
            per_strategy = {}
            retries = {}
            for name, make in self.STRATEGIES:
                plan = make(decomp, store.layout, 4)
                faulty = FaultyStore(store, sched)
                out, dropped = read_plan_from_disk_resilient(
                    plan, faulty, retry=RetryPolicy(max_retries=2),
                    report=faulty.report,
                )
                assert dropped == []
                # Element totals per file across ranks are plan-dependent;
                # compare against the plan's own clean read instead.
                clean = read_plan_from_disk(plan, store)
                for rank, per_file in clean.items():
                    for f, values in per_file.items():
                        assert np.array_equal(out[rank][f], values), (
                            name, rank, f,
                        )
                retries[name] = faulty.report.retries
                per_strategy[name] = {
                    f: np.sort(np.concatenate(
                        [pf[f] for pf in out.values() if f in pf]
                    ))
                    for f in range(4)
                }
            # Faults fire per member: every strategy retries the same members.
            faulty_members = {
                k for k in range(4) if sched.member_failures(k) > 0
            }
            if faulty_members:
                assert all(r > 0 for r in retries.values())
            # And the union of delivered elements is byte-identical across
            # strategies (sorted multiset comparison per file).
            base = per_strategy["single_reader"]
            for name, got in per_strategy.items():
                for f in range(4):
                    assert np.array_equal(
                        np.unique(got[f]), np.unique(base[f])
                    ), (name, f)
