"""Tests for the bilinear-interpolation observation network."""

import numpy as np
import pytest

from repro.core import (
    Decomposition,
    Grid,
    InterpolatingObservationNetwork,
    local_analysis,
    perturb_observations,
)


def grid():
    return Grid(n_x=20, n_y=10, dx_km=1.0, dy_km=1.0)


class TestConstruction:
    def test_valid(self):
        net = InterpolatingObservationNetwork(grid(), x=[1.5], y=[2.5])
        assert net.m == 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            InterpolatingObservationNetwork(grid(), x=[20.0], y=[0.0])
        with pytest.raises(ValueError):
            InterpolatingObservationNetwork(grid(), x=[0.0], y=[9.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            InterpolatingObservationNetwork(grid(), x=[], y=[])

    def test_nonperiodic_x_range(self):
        g = Grid(n_x=20, n_y=10, periodic_x=False)
        with pytest.raises(ValueError):
            InterpolatingObservationNetwork(g, x=[19.5], y=[0.0])


class TestOperator:
    def test_weights_sum_to_one(self):
        net = InterpolatingObservationNetwork.random(grid(), m=30, rng=0)
        sums = np.asarray(net.operator.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_on_grid_point_is_selection(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[3.0], y=[2.0])
        state = np.arange(float(g.n))
        assert (net.operator @ state)[0] == pytest.approx(43.0)

    def test_midpoint_interpolates(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[3.5], y=[2.0])
        state = np.arange(float(g.n))
        assert (net.operator @ state)[0] == pytest.approx(43.5)

    def test_exact_for_bilinear_fields(self):
        """Bilinear interpolation reproduces planar fields exactly."""
        g = Grid(n_x=20, n_y=10, periodic_x=False)
        xs = np.arange(g.n) % g.n_x
        ys = np.arange(g.n) // g.n_x
        state = 2.0 * xs + 3.0 * ys + 1.0
        net = InterpolatingObservationNetwork(
            g, x=[4.25, 11.75], y=[3.5, 7.25]
        )
        vals = net.operator @ state
        assert vals[0] == pytest.approx(2 * 4.25 + 3 * 3.5 + 1)
        assert vals[1] == pytest.approx(2 * 11.75 + 3 * 7.25 + 1)

    def test_periodic_seam(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[19.5], y=[0.0])
        state = np.zeros(g.n)
        state[19] = 10.0  # ix=19, iy=0
        state[0] = 20.0  # ix=0 (wraps), iy=0
        assert (net.operator @ state)[0] == pytest.approx(15.0)

    def test_clamped_last_row_weights_merge(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[5.0], y=[9.0])
        row = net.operator.getrow(0)
        assert row.nnz <= 2  # clamping merged duplicate stencil points
        assert row.sum() == pytest.approx(1.0)


class TestRestriction:
    def test_full_stencil_inside_box_kept(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[3.5], y=[2.5])
        pos, h_local = net.restrict_to_box(np.arange(0, 8), np.arange(0, 5))
        assert list(pos) == [0]
        state_local = np.arange(40.0)  # 5 rows x 8 cols
        # value at (x=3.5, y=2.5) of field f=row*8+col: row 2.5, col 3.5
        assert (h_local @ state_local)[0] == pytest.approx(2.5 * 8 + 3.5)

    def test_straddling_obs_dropped(self):
        g = grid()
        net = InterpolatingObservationNetwork(g, x=[7.5], y=[2.0])
        pos, h_local = net.restrict_to_box(np.arange(0, 8), np.arange(0, 5))
        assert pos.size == 0
        assert h_local.shape[0] == 0

    def test_local_analysis_works_with_interp_network(self):
        g = grid()
        rng = np.random.default_rng(3)
        states = rng.normal(size=(g.n, 10))
        net = InterpolatingObservationNetwork.random(g, m=25,
                                                     obs_error_std=0.5, rng=rng)
        truth = rng.normal(size=g.n)
        y = net.observe(truth, rng=rng)
        ys = perturb_observations(y, net.obs_error_std, 10, rng=rng)
        decomp = Decomposition(g, n_sdx=2, n_sdy=2, xi=2, eta=2)
        sd = decomp.subdomain(0, 0)
        out = local_analysis(sd, states[sd.expansion_flat], net, ys,
                             radius_km=1.5)
        assert out.shape == (sd.size, 10)
        assert np.all(np.isfinite(out))


class TestObserve:
    def test_noiseless_matches_operator(self):
        g = grid()
        net = InterpolatingObservationNetwork.random(g, m=10, rng=1)
        state = np.random.default_rng(2).normal(size=g.n)
        assert np.allclose(net.observe(state, noisy=False),
                           net.operator @ state)

    def test_random_network_reproducible(self):
        a = InterpolatingObservationNetwork.random(grid(), m=5, rng=7)
        b = InterpolatingObservationNetwork.random(grid(), m=5, rng=7)
        assert np.allclose(a.x, b.x) and np.allclose(a.y, b.y)
