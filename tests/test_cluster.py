"""Tests for the machine model: disks, PFS placement, machine facade."""

import pytest

from repro.cluster import Disk, Machine, MachineSpec, ParallelFileSystem
from repro.sim import Environment


def make_disk(env, seek=0.01, theta=1e-6, concurrency=2):
    return Disk(env, disk_id=0, seek_time=seek, theta=theta, concurrency=concurrency)


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.alpha > 0 and spec.theta > 0

    def test_tianhe2_preset(self):
        spec = MachineSpec.tianhe2()
        assert spec.n_storage_nodes == 6
        assert spec.cores_per_node == 24

    def test_small_cluster_slower_than_tianhe2(self):
        assert MachineSpec.small_cluster().theta > MachineSpec.tianhe2().theta

    def test_with_replaces_field(self):
        spec = MachineSpec().with_(theta=5e-9)
        assert spec.theta == 5e-9

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(theta=-1.0)

    def test_frozen(self):
        spec = MachineSpec()
        with pytest.raises(Exception):
            spec.theta = 1.0  # type: ignore[misc]


class TestDisk:
    def test_service_time_formula(self):
        env = Environment()
        d = make_disk(env, seek=0.01, theta=1e-6)
        assert d.service_time(seeks=3, nbytes=1000) == pytest.approx(0.03 + 1e-3)

    def test_service_time_rejects_negative(self):
        env = Environment()
        d = make_disk(env)
        with pytest.raises(ValueError):
            d.service_time(-1, 10)

    def test_single_read_timing(self):
        env = Environment()
        d = make_disk(env, seek=0.01, theta=1e-6, concurrency=1)
        results = []

        def proc(env):
            outcome = yield from d.read(seeks=1, nbytes=1000)
            results.append(outcome)

        env.process(proc(env))
        env.run()
        (o,) = results
        assert o.wait == 0.0
        assert o.service == pytest.approx(0.011)
        assert o.completed_at == pytest.approx(0.011)

    def test_concurrency_limit_queues_requests(self):
        env = Environment()
        d = make_disk(env, seek=0.01, theta=1e-6, concurrency=2)
        outcomes = []

        def proc(env, i):
            outcome = yield from d.read(seeks=0, nbytes=1_000_000)  # 1 s each
            outcomes.append((i, outcome))

        for i in range(4):
            env.process(proc(env, i))
        env.run()
        waits = sorted(o.wait for _, o in outcomes)
        # Two served immediately, two wait one service time.
        assert waits == pytest.approx([0.0, 0.0, 1.0, 1.0])
        assert env.now == pytest.approx(2.0)

    def test_counters_accumulate(self):
        env = Environment()
        d = make_disk(env)

        def proc(env):
            yield from d.read(seeks=2, nbytes=100)
            yield from d.read(seeks=3, nbytes=200)

        env.process(proc(env))
        env.run()
        assert d.total_requests == 2
        assert d.total_seeks == 5
        assert d.total_bytes == 300


class TestParallelFileSystem:
    def test_hashed_placement_deterministic_and_uniform(self):
        env = Environment()
        pfs = ParallelFileSystem(env, MachineSpec(n_storage_nodes=6))
        ids = [pfs.disk_of(f).disk_id for f in range(120)]
        assert ids == [pfs.disk_of(f).disk_id for f in range(120)]
        # Every disk holds a reasonable share of the 120 files.
        from collections import Counter
        loads = Counter(ids)
        assert set(loads) == set(range(6))
        # Hash placement is statistically (not perfectly) balanced.
        assert max(loads.values()) <= 3 * min(loads.values())

    def test_placement_not_aliased_with_strides(self):
        """Files taken with stride k (a concurrent group's share) must not
        collapse onto a small subset of disks."""
        env = Environment()
        pfs = ParallelFileSystem(env, MachineSpec(n_storage_nodes=6))
        for stride in (2, 3, 4, 6):
            disks = {pfs.disk_of(f).disk_id for f in range(0, 120, stride)}
            assert len(disks) >= 4

    def test_negative_file_id_rejected(self):
        env = Environment()
        pfs = ParallelFileSystem(env, MachineSpec())
        with pytest.raises(ValueError):
            pfs.disk_of(-1)

    def test_different_files_read_in_parallel(self):
        """Files on different disks don't contend; same disk serialises."""
        spec = MachineSpec(
            n_storage_nodes=2, disk_concurrency=1, seek_time=1e-9, theta=1e-6
        )
        env = Environment()
        pfs = ParallelFileSystem(env, spec)

        def reader(env, file_id):
            yield from pfs.read(file_id, seeks=0, nbytes=1_000_000)

        # Files 0 and 1 on different disks: parallel => total ~1 s.
        env.process(reader(env, 0))
        env.process(reader(env, 1))
        env.run()
        assert env.now == pytest.approx(1.0, rel=1e-6)

        # Files 0 and 2 share disk 0: serial => total ~2 s more.
        env2 = Environment()
        pfs2 = ParallelFileSystem(env2, spec)

        def reader2(env, file_id):
            yield from pfs2.read(file_id, seeks=0, nbytes=1_000_000)

        env2.process(reader2(env2, 0))
        env2.process(reader2(env2, 2))
        env2.run()
        assert env2.now == pytest.approx(2.0, rel=1e-6)

    def test_totals_aggregates(self):
        env = Environment()
        pfs = ParallelFileSystem(env, MachineSpec(n_storage_nodes=2))

        def proc(env):
            yield from pfs.read(0, seeks=1, nbytes=10)
            yield from pfs.read(1, seeks=2, nbytes=20)

        env.process(proc(env))
        env.run()
        assert pfs.totals() == {"requests": 2, "seeks": 3, "bytes": 30.0}


class TestMachine:
    def test_message_time(self):
        m = Machine(MachineSpec(alpha=1e-6, beta=1e-9))
        assert m.message_time(1000) == pytest.approx(1e-6 + 1e-6)

    def test_message_time_rejects_negative(self):
        m = Machine()
        with pytest.raises(ValueError):
            m.message_time(-5)

    def test_n_nodes_rounds_up(self):
        m = Machine(MachineSpec(cores_per_node=24))
        assert m.n_nodes(24) == 1
        assert m.n_nodes(25) == 2
        assert m.n_nodes(12000) == 500

    def test_default_spec(self):
        m = Machine()
        assert isinstance(m.spec, MachineSpec)
        assert m.now == 0.0
