"""Tests for Ensemble, ObservationNetwork and perturbed observations."""

import numpy as np
import pytest

from repro.core import Ensemble, Grid, ObservationNetwork, perturb_observations


class TestEnsemble:
    def test_shapes(self):
        e = Ensemble(np.zeros((10, 4)))
        assert e.n == 10 and e.size == 4

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Ensemble(np.zeros(10))

    def test_member_view(self):
        states = np.arange(12.0).reshape(3, 4)
        e = Ensemble(states)
        assert np.array_equal(e.member(1), [1.0, 5.0, 9.0])

    def test_member_out_of_range(self):
        e = Ensemble(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            e.member(4)

    def test_mean_and_anomalies(self):
        states = np.array([[1.0, 3.0], [2.0, 6.0]])
        e = Ensemble(states)
        assert np.allclose(e.mean(), [2.0, 4.0])
        anom = e.anomalies()
        assert np.allclose(anom, [[-1.0, 1.0], [-2.0, 2.0]])
        assert np.allclose(anom.sum(axis=1), 0.0)

    def test_restrict(self):
        e = Ensemble(np.arange(12.0).reshape(6, 2))
        sub = e.restrict(np.array([0, 5]))
        assert sub.n == 2
        assert np.array_equal(sub.states[1], [10.0, 11.0])

    def test_from_members(self):
        e = Ensemble.from_members([[1.0, 2.0], [3.0, 4.0]])
        assert e.n == 2 and e.size == 2
        assert np.array_equal(e.member(0), [1.0, 2.0])
        assert np.array_equal(e.member(1), [3.0, 4.0])

    def test_from_members_empty(self):
        with pytest.raises(ValueError):
            Ensemble.from_members([])

    def test_copy_is_independent(self):
        e = Ensemble(np.zeros((3, 2)))
        c = e.copy()
        c.states[0, 0] = 9.0
        assert e.states[0, 0] == 0.0


class TestObservationNetwork:
    def grid(self):
        return Grid(n_x=20, n_y=10)

    def test_operator_selects_locations(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[2, 5], iy=[1, 3], obs_error_std=0.5)
        state = np.arange(float(g.n))
        y = net.operator @ state
        assert np.array_equal(y, [22.0, 65.0])

    def test_m_and_flat_locations(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[0, 19], iy=[0, 9])
        assert net.m == 2
        assert list(net.flat_locations) == [0, 199]

    def test_out_of_range_rejected(self):
        g = self.grid()
        with pytest.raises(ValueError):
            ObservationNetwork(g, ix=[20], iy=[0])
        with pytest.raises(ValueError):
            ObservationNetwork(g, ix=[0], iy=[10])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObservationNetwork(self.grid(), ix=[], iy=[])

    def test_bad_std_rejected(self):
        with pytest.raises(ValueError):
            ObservationNetwork(self.grid(), ix=[0], iy=[0], obs_error_std=0.0)

    def test_r_matrix_diagonal(self):
        net = ObservationNetwork(self.grid(), ix=[0, 1], iy=[0, 0], obs_error_std=2.0)
        r = net.r_matrix().toarray()
        assert np.allclose(r, 4.0 * np.eye(2))
        assert np.allclose(net.r_inv_diag(), 0.25)

    def test_observe_noiseless(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[3], iy=[2])
        state = np.arange(float(g.n))
        assert net.observe(state, noisy=False)[0] == 43.0

    def test_observe_noise_statistics(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[3], iy=[2], obs_error_std=1.5)
        state = np.zeros(g.n)
        rng = np.random.default_rng(0)
        samples = np.array([net.observe(state, rng=rng)[0] for _ in range(4000)])
        assert abs(samples.mean()) < 0.1
        assert samples.std() == pytest.approx(1.5, rel=0.1)

    def test_random_network_distinct_locations(self):
        g = self.grid()
        net = ObservationNetwork.random(g, m=50, rng=np.random.default_rng(1))
        assert net.m == 50
        assert len(set(net.flat_locations)) == 50

    def test_random_network_too_many(self):
        with pytest.raises(ValueError):
            ObservationNetwork.random(self.grid(), m=201)

    def test_regular_network(self):
        g = self.grid()
        net = ObservationNetwork.regular(g, every_x=5, every_y=5)
        assert net.m == 4 * 2
        assert 0 in net.flat_locations

    def test_restrict_to_box_selects_inside(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[2, 8, 15], iy=[1, 2, 5])
        pos, h_local = net.restrict_to_box(
            x_indices=np.arange(0, 10), y_indices=np.arange(0, 4)
        )
        assert list(pos) == [0, 1]
        assert h_local.shape == (2, 40)
        # Local column of obs 0: row 1, col 2 of the 10-wide box.
        state_local = np.arange(40.0)
        assert (h_local @ state_local)[0] == 12.0

    def test_restrict_to_box_empty(self):
        g = self.grid()
        net = ObservationNetwork(g, ix=[15], iy=[9])
        pos, h_local = net.restrict_to_box(np.arange(0, 5), np.arange(0, 5))
        assert pos.size == 0
        assert h_local.shape == (0, 25)

    def test_restrict_handles_wrapped_columns(self):
        """Expansion column lists are wrapped; matching must follow values."""
        g = self.grid()
        net = ObservationNetwork(g, ix=[19], iy=[0])
        pos, h_local = net.restrict_to_box(
            x_indices=np.array([18, 19, 0, 1]), y_indices=np.array([0, 1])
        )
        assert list(pos) == [0]
        state_local = np.arange(8.0)
        assert (h_local @ state_local)[0] == 1.0  # column position of ix=19


class TestPerturbObservations:
    def test_shape(self):
        ys = perturb_observations(np.zeros(5), 1.0, ensemble_size=8, rng=0)
        assert ys.shape == (5, 8)

    def test_centering_makes_row_means_exact(self):
        y = np.array([3.0, -1.0])
        ys = perturb_observations(y, 2.0, ensemble_size=10, rng=1, center=True)
        assert np.allclose(ys.mean(axis=1), y)

    def test_uncentered_has_sampling_noise(self):
        y = np.zeros(1)
        ys = perturb_observations(y, 2.0, ensemble_size=10, rng=1, center=False)
        assert abs(ys.mean()) > 1e-6

    def test_perturbation_std(self):
        ys = perturb_observations(np.zeros(2000), 3.0, ensemble_size=2, rng=2,
                                  center=False)
        assert ys.std() == pytest.approx(3.0, rel=0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            perturb_observations(np.zeros(3), 0.0, 4)
        with pytest.raises(ValueError):
            perturb_observations(np.zeros(3), 1.0, 0)
