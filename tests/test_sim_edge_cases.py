"""Edge-case tests for the DES kernel: failure paths, interrupts, cleanup."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Resource,
    SimulationError,
    Store,
)


class TestConditionFailures:
    def test_all_of_fails_on_first_child_failure(self):
        env = Environment()
        caught = []

        def failer(env, ev):
            yield env.timeout(1.0)
            ev.fail(RuntimeError("child failed"))

        def waiter(env, ev):
            try:
                yield AllOf(env, [env.timeout(5.0), ev])
            except RuntimeError as exc:
                caught.append((env.now, str(exc)))

        ev = env.event()
        env.process(failer(env, ev))
        env.process(waiter(env, ev))
        env.run()
        assert caught == [(1.0, "child failed")]

    def test_any_of_fails_on_failure_before_success(self):
        env = Environment()
        caught = []

        def failer(env, ev):
            yield env.timeout(1.0)
            ev.fail(KeyError("early"))

        def waiter(env, ev):
            try:
                yield AnyOf(env, [env.timeout(5.0), ev])
            except KeyError:
                caught.append(env.now)

        ev = env.event()
        env.process(failer(env, ev))
        env.process(waiter(env, ev))
        env.run()
        assert caught == [1.0]

    def test_any_of_success_masks_later_failure(self):
        env = Environment()
        done = []

        def failer(env, ev):
            yield env.timeout(5.0)
            ev.defuse()  # nobody consumes this failure
            ev.fail(RuntimeError("late"))

        def waiter(env, ev):
            result = yield AnyOf(env, [env.timeout(1.0, value="fast"), ev])
            done.append(list(result.values()))

        ev = env.event()
        env.process(failer(env, ev))
        env.process(waiter(env, ev))
        env.run()
        assert done == [["fast"]]

    def test_condition_rejects_mixed_environments(self):
        env_a, env_b = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env_a, [env_a.timeout(1), env_b.timeout(1)])


class TestInterruptDuringWait:
    def test_interrupt_while_queued_releases_queue_slot(self):
        """An interrupted waiter must not leave a dangling queue entry."""
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(10.0)
                order.append(("holder-done", env.now))

        def victim(env):
            try:
                with res.request() as req:
                    yield req
            except Interrupt:
                order.append(("victim-interrupted", env.now))

        def third(env):
            yield env.timeout(2.0)
            with res.request() as req:
                yield req
                order.append(("third-granted", env.now))

        env.process(holder(env))
        v = env.process(victim(env))

        def attacker(env):
            yield env.timeout(1.0)
            v.interrupt()

        env.process(attacker(env))
        env.process(third(env))
        env.run()
        assert ("victim-interrupted", 1.0) in order
        # The third requester gets the slot right when the holder releases,
        # not blocked behind the cancelled victim.
        assert ("third-granted", 10.0) in order
        assert res.queue_length == 0

    def test_interrupt_while_holding_then_context_exit_releases(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def holder(env):
            try:
                with res.request() as req:
                    yield req
                    yield env.timeout(100.0)
            except Interrupt:
                log.append(env.now)

        def second(env):
            with res.request() as req:
                yield req
                log.append(("second", env.now))

        h = env.process(holder(env))

        def attacker(env):
            yield env.timeout(3.0)
            h.interrupt()

        env.process(attacker(env))
        env.process(second(env))
        env.run()
        assert 3.0 in log
        assert ("second", 3.0) in log  # slot released by the with-block


class TestStoreEdgeCases:
    def test_many_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(env, i):
            item = yield store.get()
            got.append((i, item))

        for i in range(3):
            env.process(getter(env, i))

        def producer(env):
            for v in "abc":
                yield env.timeout(1.0)
                yield store.put(v)

        env.process(producer(env))
        env.run()
        assert got == [(0, "a"), (1, "b"), (2, "c")]

    def test_put_get_interleaved_zero_time(self):
        env = Environment()
        store = Store(env, capacity=1)
        seen = []

        def pingpong(env):
            for i in range(5):
                yield store.put(i)
                item = yield store.get()
                seen.append(item)

        env.process(pingpong(env))
        env.run()
        assert seen == [0, 1, 2, 3, 4]


class TestEventDefuse:
    def test_defused_failure_does_not_crash_run(self):
        env = Environment()

        def proc(env):
            ev = env.event()
            ev.defuse()
            ev.fail(RuntimeError("nobody cares"))
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()  # must not raise
        assert env.now == 1.0

    def test_undefused_failure_crashes_run(self):
        env = Environment()

        def proc(env):
            ev = env.event()
            ev.fail(RuntimeError("unconsumed"))
            yield env.timeout(1.0)

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="unconsumed"):
            env.run()
