"""Tests for the reading strategies: seek counts, coverage, equivalence."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import Decomposition, Grid
from repro.io import (
    FileLayout,
    bar_read_plan,
    block_read_plan,
    concurrent_access_plan,
    execute_read_plan_inline,
    simulate_read_plan,
    single_reader_plan,
)


def setup(n_x=24, n_y=12, n_sdx=4, n_sdy=3, xi=2, eta=1, h=8):
    grid = Grid(n_x=n_x, n_y=n_y)
    decomp = Decomposition(grid, n_sdx=n_sdx, n_sdy=n_sdy, xi=xi, eta=eta)
    layout = FileLayout(grid=grid, h_bytes=h)
    return grid, decomp, layout


def make_members(grid, n_files, seed=0):
    rng = np.random.default_rng(seed)
    return {f: rng.normal(size=grid.n) for f in range(n_files)}


class TestSingleReader:
    def test_one_reader_full_files(self):
        _, decomp, layout = setup()
        plan = single_reader_plan(decomp, layout, n_files=4)
        assert plan.reader_ranks == [0]
        rp = plan.per_rank[0]
        assert len(rp.reads) == 4
        assert all(op.seeks == 1 for op in rp.reads)
        assert rp.total_elems == 4 * layout.file_elems

    def test_serial_sends_to_every_other_rank(self):
        _, decomp, layout = setup()
        plan = single_reader_plan(decomp, layout, n_files=2)
        sends = plan.per_rank[0].sends
        assert len(sends) == 2 * (decomp.n_subdomains - 1)
        assert all(s.source == 0 for s in sends)
        dests = {s.dest for s in sends}
        assert dests == set(range(1, decomp.n_subdomains))


class TestBlockPlan:
    def test_every_compute_rank_reads(self):
        _, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=3)
        assert plan.reader_ranks == list(range(decomp.n_subdomains))
        assert not any(p.sends for p in plan.per_rank.values())

    def test_seeks_per_file_equal_expansion_rows_times_runs(self):
        _, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=1)
        # Interior sub-domain (1, 1): 4+2 eta rows, single column run.
        sd = decomp.subdomain(1, 1)
        rank = decomp.rank_of(1, 1)
        op = plan.per_rank[rank].reads[0]
        assert op.seeks == len(sd.exp_y_indices)

    def test_wrapped_subdomain_costs_two_runs_per_row(self):
        _, decomp, layout = setup()
        sd = decomp.subdomain(0, 1)  # wraps the longitude seam
        rank = decomp.rank_of(0, 1)
        plan = block_read_plan(decomp, layout, n_files=1)
        op = plan.per_rank[rank].reads[0]
        assert op.seeks == 2 * len(sd.exp_y_indices)

    def test_total_seeks_scale_linearly_with_n_sdx(self):
        """The paper's O(n_y * n_sdx) law (Sec. 4.1.1, Fig. 5)."""
        totals = {}
        for n_sdx in (2, 4, 8):
            _, decomp, layout = setup(n_x=48, n_y=12, n_sdx=n_sdx, xi=0, eta=0)
            plan = block_read_plan(decomp, layout, n_files=1)
            totals[n_sdx] = plan.total_seeks
        assert totals[4] == 2 * totals[2]
        assert totals[8] == 4 * totals[2]

    def test_reads_exactly_the_expansion(self):
        grid, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=1)
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            got = set(plan.per_rank[rank].reads[0].indices())
            assert got == set(sd.expansion_flat)


class TestConcurrentAccessPlan:
    def test_io_rank_numbering(self):
        _, decomp, layout = setup()
        plan = concurrent_access_plan(decomp, layout, n_files=4, n_cg=2)
        io_base = decomp.n_subdomains
        expected = [io_base + g * 3 + j for g in range(2) for j in range(3)]
        assert plan.reader_ranks == sorted(expected)

    def test_bar_reads_are_single_seek(self):
        _, decomp, layout = setup()
        plan = concurrent_access_plan(decomp, layout, n_files=4, n_cg=2)
        for rank in plan.reader_ranks:
            assert all(op.seeks == 1 for op in plan.per_rank[rank].reads)

    def test_group_file_assignment_partition(self):
        _, decomp, layout = setup()
        n_files, n_cg = 6, 3
        plan = concurrent_access_plan(decomp, layout, n_files, n_cg)
        io_base = decomp.n_subdomains
        for g in range(n_cg):
            rank = io_base + g * decomp.n_sdy  # bar 0 of group g
            files = [op.file_id for op in plan.per_rank[rank].reads]
            assert files == list(range(g, n_files, n_cg))
            assert len(files) == n_files // n_cg

    def test_divisibility_enforced(self):
        _, decomp, layout = setup()
        with pytest.raises(ValueError):
            concurrent_access_plan(decomp, layout, n_files=5, n_cg=2)

    def test_sends_cover_all_compute_ranks_per_file(self):
        _, decomp, layout = setup()
        plan = concurrent_access_plan(decomp, layout, n_files=2, n_cg=1)
        sends = [s for p in plan.per_rank.values() for s in p.sends]
        for f in range(2):
            dests = sorted(s.dest for s in sends if s.tag == f)
            assert dests == list(range(decomp.n_subdomains))

    def test_send_sizes_match_expansion_blocks(self):
        _, decomp, layout = setup()
        plan = concurrent_access_plan(decomp, layout, n_files=1, n_cg=1)
        sends = [s for p in plan.per_rank.values() for s in p.sends]
        for s in sends:
            sd = decomp.subdomain_of_rank(s.dest)
            iy0, iy1 = decomp.bar_read_rows(sd.j)
            assert s.n_elems == len(sd.exp_x_indices) * (iy1 - iy0)

    def test_bar_plan_is_single_group(self):
        _, decomp, layout = setup()
        plan = bar_read_plan(decomp, layout, n_files=4)
        assert plan.strategy == "bar"
        assert len(plan.reader_ranks) == decomp.n_sdy


class TestDataEquivalence:
    """All strategies must put the same data within reach of each rank."""

    def test_block_reads_cover_dest_blocks_of_bar_sends(self):
        grid, decomp, layout = setup()
        members = make_members(grid, n_files=2)
        block = block_read_plan(decomp, layout, n_files=2)
        bars = bar_read_plan(decomp, layout, n_files=2)
        got_block = execute_read_plan_inline(block, members)
        got_bars = execute_read_plan_inline(bars, members)

        # Bar j's reader holds a superset of every band-j block, for each file.
        io_base = decomp.n_subdomains
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            bar_rank = io_base + sd.j
            for f in range(2):
                block_vals = set(np.round(got_block[rank][f], 12))
                bar_vals = set(np.round(got_bars[bar_rank][f], 12))
                assert block_vals.issubset(bar_vals)

    def test_block_plan_gathers_expansion_values_exactly(self):
        grid, decomp, layout = setup()
        members = make_members(grid, n_files=1)
        plan = block_read_plan(decomp, layout, n_files=1)
        got = execute_read_plan_inline(plan, members)
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            expected = np.sort(members[0][sd.expansion_flat])
            assert np.allclose(np.sort(got[rank][0]), expected)

    def test_union_of_bars_covers_file(self):
        grid, decomp, layout = setup()
        plan = bar_read_plan(decomp, layout, n_files=1)
        covered = set()
        for p in plan.per_rank.values():
            for op in p.reads:
                covered.update(op.indices())
        assert covered == set(range(grid.n))

    def test_missing_member_raises(self):
        grid, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=2)
        with pytest.raises(KeyError):
            execute_read_plan_inline(plan, {0: np.zeros(grid.n)})


class TestSimulatedReading:
    def machine(self, **kw):
        defaults = dict(
            seek_time=1e-3, theta=1e-8, n_storage_nodes=3, disk_concurrency=2
        )
        defaults.update(kw)
        return Machine(MachineSpec(**defaults))

    def test_simulation_produces_timeline(self):
        _, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=2)
        timeline, makespan = simulate_read_plan(self.machine(), plan)
        assert makespan > 0
        assert set(timeline.ranks()).issubset(set(plan.reader_ranks))

    def test_block_read_time_grows_with_n_sdx(self):
        """Fig. 5's shape at miniature scale."""
        times = {}
        for n_sdx in (2, 4, 8):
            _, decomp, layout = setup(n_x=48, n_y=12, n_sdx=n_sdx, n_sdy=3,
                                      xi=0, eta=0)
            plan = block_read_plan(decomp, layout, n_files=2)
            _, makespan = simulate_read_plan(self.machine(), plan)
            times[n_sdx] = makespan
        assert times[2] < times[4] < times[8]

    def test_concurrent_groups_speed_up_reading(self):
        """Fig. 10's shape: more groups -> faster, until disks saturate."""
        _, decomp, layout = setup(n_x=48, n_y=12, n_sdy=3)
        times = {}
        for n_cg in (1, 3):
            plan = concurrent_access_plan(decomp, layout, n_files=6, n_cg=n_cg)
            _, makespan = simulate_read_plan(self.machine(), plan)
            times[n_cg] = makespan
        assert times[3] < times[1]

    def test_bar_faster_than_block_per_seek_costs(self):
        """With seek-dominated service, bar reading wins decisively."""
        _, decomp, layout = setup(n_x=48, n_y=12, n_sdx=8, n_sdy=3, xi=2, eta=1)
        machine_a = self.machine(seek_time=1e-2, theta=1e-9)
        machine_b = self.machine(seek_time=1e-2, theta=1e-9)
        _, t_block = simulate_read_plan(
            machine_a, block_read_plan(decomp, layout, n_files=2)
        )
        _, t_bar = simulate_read_plan(
            machine_b, bar_read_plan(decomp, layout, n_files=2)
        )
        assert t_bar < t_block

    def test_deterministic_repeat(self):
        _, decomp, layout = setup()
        plan = block_read_plan(decomp, layout, n_files=2)
        _, t1 = simulate_read_plan(self.machine(), plan)
        _, t2 = simulate_read_plan(self.machine(), plan)
        assert t1 == t2
