"""Tests for the checkpoint/restart subsystem (``repro.checkpoint``).

The headline guarantee, asserted exhaustively: kill the campaign after
*every* cycle boundary — and mid-checkpoint-write via ``FaultyStore`` —
resume, and the final analysis ensemble is byte-identical to an
uninterrupted run, under both zero-fault and chaos regimes.
"""

import json

import numpy as np
import pytest

from repro.checkpoint import (
    CampaignRunner,
    CheckpointManifest,
    CheckpointStore,
    CorruptCheckpointError,
    NoCheckpointError,
    RetentionPolicy,
    ScheduleMismatchError,
    SimulatedCrash,
)
from repro.checkpoint.format import MANIFEST_NAME
from repro.core import Decomposition, Grid, ObservationNetwork, radius_to_halo
from repro.faults import (
    CorruptMemberError,
    FaultSchedule,
    RetryPolicy,
    TransientIOError,
)
from repro.filters import DistributedEnKF
from repro.models import (
    AdvectionDiffusionModel,
    TwinExperiment,
    correlated_ensemble,
)

N_CYCLES = 8
INTERVAL = 3

# A chaos regime exercising checkpoint I/O on both sides: half the member
# writes die mid-file once, half the member reads fail transiently twice.
CHAOS = FaultSchedule(
    11,
    member_fault_rate=0.5,
    member_fault_attempts=2,
    member_write_fault_rate=0.5,
    member_write_attempts=1,
)


def make_twin():
    grid = Grid(n_x=12, n_y=6, dx_km=2.0, dy_km=4.0)
    model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
    radius_km = 5.0
    xi, eta = radius_to_halo(radius_km, grid.dx_km, grid.dy_km)
    decomp = Decomposition(grid, n_sdx=2, n_sdy=1, xi=xi, eta=eta)
    network = ObservationNetwork.random(
        grid, m=10, obs_error_std=0.2, rng=np.random.default_rng(1)
    )
    filt = DistributedEnKF(radius_km=radius_km, inflation=1.05, ridge=1e-2)
    twin = TwinExperiment(
        model,
        network,
        lambda s, y, rng: filt.assimilate(decomp, s, network, y, rng=rng),
        steps_per_cycle=2,
        master_seed=3,
    )
    rng = np.random.default_rng(7)
    truth0 = correlated_ensemble(grid, 1, length_scale_km=8.0, rng=rng)[:, 0]
    ensemble0 = correlated_ensemble(
        grid, 5, length_scale_km=8.0, mean=np.zeros(grid.n), std=0.8, rng=rng
    )
    return twin, truth0, ensemble0


@pytest.fixture(scope="module")
def reference():
    """Final ensemble + diagnostics of the uninterrupted campaign."""
    twin, truth0, ensemble0 = make_twin()
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        runner = CampaignRunner(twin, d, interval=INTERVAL)
        result = runner.run(truth0, ensemble0, N_CYCLES)
        final = runner.store.load(N_CYCLES).ensemble
    return final, result


class TestTwinSteppingApi:
    def test_runner_matches_plain_twin_run(self, reference, tmp_path):
        """Interleaving checkpoints must not perturb the numerics at all."""
        twin, truth0, ensemble0 = make_twin()
        plain = twin.run(truth0.copy(), ensemble0.copy(), N_CYCLES)
        _, result = reference
        assert plain.analysis_rmse == result.analysis_rmse
        assert plain.background_rmse == result.background_rmse
        assert plain.free_rmse == result.free_rmse
        assert plain.spread == result.spread

    def test_cycle_seeds_fast_forward(self):
        twin, _, _ = make_twin()
        full = twin.cycle_seeds()
        burned = [next(full) for _ in range(5)]
        resumed = twin.cycle_seeds(skip=3)
        assert [next(resumed), next(resumed)] == burned[3:5]

    def test_cycle_seeds_negative_skip_rejected(self):
        twin, _, _ = make_twin()
        with pytest.raises(ValueError):
            next(twin.cycle_seeds(skip=-1))


class TestKillAndResume:
    @pytest.mark.parametrize("kill_at", range(1, N_CYCLES))
    @pytest.mark.parametrize("faults", [None, CHAOS], ids=["clean", "chaos"])
    def test_kill_at_every_cycle_boundary(
        self, tmp_path, reference, kill_at, faults
    ):
        """Crash after any cycle + resume == uninterrupted run, bit for bit."""
        ref_final, ref_result = reference
        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(
            twin, tmp_path, interval=INTERVAL, faults=faults
        )

        def kill(state):
            if state.cycle == kill_at:
                raise SimulatedCrash(f"kill at {state.cycle}")

        try:
            runner.run(truth0, ensemble0, N_CYCLES, on_cycle=kill)
            survived = True
        except SimulatedCrash:
            survived = False
        assert not survived

        resumed = CampaignRunner(
            twin, tmp_path, interval=INTERVAL, faults=faults
        )
        result = resumed.run_or_resume(truth0, ensemble0, N_CYCLES)
        assert np.array_equal(
            resumed.store.load(N_CYCLES).ensemble, ref_final
        )
        assert result.analysis_rmse == ref_result.analysis_rmse
        assert result.free_rmse == ref_result.free_rmse

    def test_mid_checkpoint_crash_leaves_previous_authoritative(
        self, tmp_path, reference
    ):
        """A writer killed mid-checkpoint (torn member writes via
        ``FaultyStore``, no retries) must leave only staging litter; resume
        falls back to the last complete checkpoint and still reproduces the
        uninterrupted run exactly."""
        ref_final, _ = reference
        twin, truth0, ensemble0 = make_twin()
        torn = FaultSchedule(5, member_write_fault_rate=1.0)

        crasher = CampaignRunner(
            twin,
            tmp_path,
            interval=INTERVAL,
            faults=torn,
            retry=RetryPolicy.none(),
        )
        with pytest.raises(TransientIOError):
            crasher.run(truth0, ensemble0, N_CYCLES)
        # The first commit died mid-write: staging litter only, nothing
        # committed, and the torn payload never reached a member file.
        assert crasher.store.cycles() == []
        tmp_dirs = list(tmp_path.glob("cycle-*.tmp"))
        assert tmp_dirs
        assert not list(tmp_dirs[0].glob("member_*.bin"))

        # Resume (here: restart from scratch) under the same schedule with
        # retries enabled absorbs the torn writes and finishes the campaign.
        resumed = CampaignRunner(
            twin, tmp_path, interval=INTERVAL, faults=torn
        )
        resumed.run_or_resume(truth0, ensemble0, N_CYCLES)
        assert np.array_equal(resumed.store.load(N_CYCLES).ensemble, ref_final)
        assert not list(tmp_path.glob("cycle-*.tmp"))  # litter collected

    def test_mid_checkpoint_crash_after_complete_checkpoints(
        self, tmp_path, reference
    ):
        """Crash during a *later* checkpoint: the earlier complete one wins."""
        ref_final, _ = reference
        twin, truth0, ensemble0 = make_twin()

        clean = CampaignRunner(twin, tmp_path, interval=INTERVAL)

        def kill(state):
            if state.cycle == INTERVAL + 1:
                raise SimulatedCrash("down between checkpoints")

        with pytest.raises(SimulatedCrash):
            clean.run(truth0, ensemble0, N_CYCLES, on_cycle=kill)
        assert clean.store.cycles() == [INTERVAL]

        torn = FaultSchedule(5, member_write_fault_rate=1.0)
        crasher = CampaignRunner(
            twin,
            tmp_path,
            interval=INTERVAL,
            faults=torn,
            retry=RetryPolicy.none(),
        )
        # Fault schedules are part of the campaign identity: the clean
        # prefix was cut without one, so the torn-writer must be rejected…
        with pytest.raises(ScheduleMismatchError):
            crasher.resume(N_CYCLES)

        # …whereas a matching-schedule campaign replays fine end-to-end.
        resumed = CampaignRunner(twin, tmp_path, interval=INTERVAL)
        resumed.resume(N_CYCLES)
        assert np.array_equal(resumed.store.load(N_CYCLES).ensemble, ref_final)

    def test_resume_skips_completed_cycles(self, tmp_path):
        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(twin, tmp_path, interval=2)

        def kill(state):
            if state.cycle == 5:
                raise SimulatedCrash("kill")

        with pytest.raises(SimulatedCrash):
            runner.run(truth0, ensemble0, N_CYCLES, on_cycle=kill)
        executed = []
        CampaignRunner(twin, tmp_path, interval=2).resume(
            N_CYCLES, on_cycle=lambda s: executed.append(s.cycle)
        )
        assert executed == [5, 6, 7, 8]  # checkpoint at 4 survived

    def test_resume_empty_store_raises(self, tmp_path):
        twin, _, _ = make_twin()
        runner = CampaignRunner(twin, tmp_path)
        with pytest.raises(NoCheckpointError):
            runner.resume(N_CYCLES)

    def test_resume_wrong_master_seed_rejected(self, tmp_path):
        twin, truth0, ensemble0 = make_twin()
        CampaignRunner(twin, tmp_path, interval=INTERVAL).run(
            truth0, ensemble0, N_CYCLES
        )
        other, _, _ = make_twin()
        other.master_seed = 99
        with pytest.raises(ScheduleMismatchError):
            CampaignRunner(other, tmp_path, interval=INTERVAL).resume(N_CYCLES)

    def test_resume_different_schedule_rejected(self, tmp_path):
        twin, truth0, ensemble0 = make_twin()
        CampaignRunner(twin, tmp_path, interval=INTERVAL, faults=CHAOS).run(
            truth0, ensemble0, N_CYCLES
        )
        different = CHAOS.with_(seed=CHAOS.seed + 1)
        with pytest.raises(ScheduleMismatchError):
            CampaignRunner(
                twin, tmp_path, interval=INTERVAL, faults=different
            ).resume(N_CYCLES)


class TestCorruptionFallback:
    def run_campaign(self, tmp_path, retention=None):
        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(
            twin, tmp_path, interval=1, retention=retention
        )
        runner.run(truth0, ensemble0, N_CYCLES)
        return twin, runner

    def test_member_bitrot_detected_and_skipped(self, tmp_path, reference):
        ref_final, _ = reference
        twin, runner = self.run_campaign(tmp_path)
        latest = runner.store.latest()
        victim = runner.store.cycle_dir(latest) / "member_00002.bin"
        raw = bytearray(victim.read_bytes())
        raw[17] ^= 0xFF
        victim.write_bytes(bytes(raw))

        with pytest.raises(CorruptMemberError):
            runner.store.load(latest)
        best = runner.store.load_best()
        assert best.cycle == latest - 1
        # The poisoned checkpoint is quarantined, not left masking its
        # cycle, so the resumed campaign can re-commit a clean cycle 8.
        assert runner.store.cycles() == list(range(1, latest))
        assert (tmp_path / f"cycle-{latest:05d}.corrupt").exists()

        resumed = CampaignRunner(twin, tmp_path, interval=1)
        resumed.resume(N_CYCLES)
        assert np.array_equal(resumed.store.load(N_CYCLES).ensemble, ref_final)

    def test_truncated_member_detected(self, tmp_path):
        _, runner = self.run_campaign(tmp_path)
        latest = runner.store.latest()
        victim = runner.store.cycle_dir(latest) / "member_00000.bin"
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        with pytest.raises(CorruptMemberError):
            runner.store.load(latest)
        assert runner.store.load_best().cycle == latest - 1

    def test_garbage_manifest_detected(self, tmp_path):
        _, runner = self.run_campaign(tmp_path)
        latest = runner.store.latest()
        (runner.store.cycle_dir(latest) / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(CorruptCheckpointError):
            runner.store.load(latest)
        assert runner.store.load_best().cycle == latest - 1

    def test_unsupported_schema_version_detected(self, tmp_path):
        _, runner = self.run_campaign(tmp_path)
        latest = runner.store.latest()
        path = runner.store.cycle_dir(latest) / MANIFEST_NAME
        raw = json.loads(path.read_text())
        raw["schema_version"] = 99
        path.write_text(json.dumps(raw))
        with pytest.raises(CorruptCheckpointError):
            runner.store.load(latest)
        assert runner.store.load_best().cycle == latest - 1

    def test_aux_corruption_detected(self, tmp_path):
        _, runner = self.run_campaign(tmp_path)
        latest = runner.store.latest()
        victim = runner.store.cycle_dir(latest) / "aux_truth.bin"
        raw = bytearray(victim.read_bytes())
        raw[0] ^= 0xFF
        victim.write_bytes(bytes(raw))
        with pytest.raises(CorruptCheckpointError):
            runner.store.load(latest)

    def test_all_corrupt_raises_no_checkpoint(self, tmp_path):
        _, runner = self.run_campaign(tmp_path)
        for cycle in runner.store.cycles():
            (runner.store.cycle_dir(cycle) / MANIFEST_NAME).write_text("?")
        with pytest.raises(NoCheckpointError):
            runner.store.load_best()


class TestRetentionAndStore:
    def test_retention_keeps_last_and_every(self, tmp_path):
        self_twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(
            self_twin,
            tmp_path,
            interval=1,
            retention=RetentionPolicy(keep_last=2, keep_every=4),
        )
        runner.run(truth0, ensemble0, N_CYCLES)
        assert runner.store.cycles() == [4, 7, 8]

    def test_newest_checkpoint_never_collected(self, tmp_path):
        store = CheckpointStore(
            tmp_path, retention=RetentionPolicy(keep_last=1, keep_every=100)
        )
        rng = np.random.default_rng(0)
        for cycle in (1, 2, 3):
            store.save(cycle, rng.normal(size=(6, 3)))
        assert store.cycles() == [3]

    def test_save_is_idempotent_per_cycle(self, tmp_path):
        store = CheckpointStore(tmp_path)
        first = np.arange(12.0).reshape(6, 2)
        store.save(1, first)
        store.save(1, first + 1.0)  # ignored: cycle 1 already committed
        assert np.array_equal(store.load(1).ensemble, first)

    def test_save_rejects_bad_shapes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(0, np.zeros(5))
        with pytest.raises(ValueError):
            store.cycle_dir(-1)

    def test_roundtrip_preserves_exact_bits(self, tmp_path):
        store = CheckpointStore(tmp_path)
        rng = np.random.default_rng(42)
        ensemble = rng.normal(size=(20, 4))
        aux = {"truth": rng.normal(size=20), "free": rng.normal(size=20)}
        diagnostics = {"analysis_rmse": [0.1 + 1e-17, 0.25]}
        store.save(3, ensemble, aux=aux, diagnostics=diagnostics)
        ckpt = store.load(3)
        assert np.array_equal(ckpt.ensemble, ensemble)
        assert np.array_equal(ckpt.aux["truth"], aux["truth"])
        assert np.array_equal(ckpt.aux["free"], aux["free"])
        assert ckpt.manifest.diagnostics["analysis_rmse"] == [0.1 + 1e-17, 0.25]

    def test_manifest_records_schedule_roundtrip(self, tmp_path):
        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(
            twin, tmp_path, interval=INTERVAL, faults=CHAOS
        )
        runner.run(truth0, ensemble0, N_CYCLES)
        manifest = runner.store.load_best().manifest
        assert FaultSchedule.from_dict(manifest.faults) == CHAOS

    def test_manifest_rejects_unknown_fields(self):
        with pytest.raises(CorruptCheckpointError):
            CheckpointManifest.from_json(
                json.dumps({"schema_version": 1, "cycle": 0, "surprise": 1})
            )


class TestGracefulDrain:
    """An interrupt (Ctrl-C or SIGTERM) commits a final checkpoint of the
    completed cycles before the campaign dies, and the resumed campaign
    is bit-identical to one that was never interrupted."""

    KILL_AT = 3  # between checkpoints with interval=5

    def test_interrupt_at_cycle_boundary_leaves_resumable_store(
        self, tmp_path, reference
    ):
        ref_final, ref_result = reference
        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(twin, tmp_path, interval=5)

        def interrupt(state):
            if state.cycle == self.KILL_AT:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            runner.run(truth0, ensemble0, N_CYCLES, on_cycle=interrupt)
        # The drain committed the in-between cycle (interval alone would
        # have left nothing newer than cycle 0).
        assert runner.store.latest() == self.KILL_AT

        resumed = CampaignRunner(twin, tmp_path, interval=5)
        result = resumed.resume(N_CYCLES)
        assert np.array_equal(
            resumed.store.load(N_CYCLES).ensemble, ref_final
        )
        assert result.analysis_rmse == ref_result.analysis_rmse

    def test_interrupt_mid_cycle_drains_completed_prefix(
        self, tmp_path, reference
    ):
        """A kill in the middle of a cycle (here: mid-analysis) must not
        checkpoint the partial cycle — the drain describes the completed
        prefix and truncates its half-appended diagnostics."""
        ref_final, ref_result = reference
        twin, truth0, ensemble0 = make_twin()
        inner = twin.assimilate
        calls = []

        def exploding(states, y, rng):
            calls.append(1)
            if len(calls) == self.KILL_AT + 1:  # inside cycle KILL_AT+1
                raise KeyboardInterrupt
            return inner(states, y, rng)

        twin.assimilate = exploding
        runner = CampaignRunner(twin, tmp_path, interval=5)
        with pytest.raises(KeyboardInterrupt):
            runner.run(truth0, ensemble0, N_CYCLES)
        assert runner.store.latest() == self.KILL_AT
        manifest = runner.store.load_best().manifest
        for name, series in manifest.diagnostics.items():
            assert len(series) == self.KILL_AT, name

        twin.assimilate = inner
        resumed = CampaignRunner(twin, tmp_path, interval=5)
        result = resumed.resume(N_CYCLES)
        assert np.array_equal(
            resumed.store.load(N_CYCLES).ensemble, ref_final
        )
        assert result.free_rmse == ref_result.free_rmse

    def test_sigterm_is_drained_like_ctrl_c(self, tmp_path):
        import os
        import signal

        twin, truth0, ensemble0 = make_twin()
        runner = CampaignRunner(twin, tmp_path, interval=5)

        def terminate(state):
            if state.cycle == self.KILL_AT:
                os.kill(os.getpid(), signal.SIGTERM)

        with pytest.raises(KeyboardInterrupt):
            runner.run(truth0, ensemble0, N_CYCLES, on_cycle=terminate)
        assert runner.store.latest() == self.KILL_AT

    def test_sigterm_handler_restored_after_run(self, tmp_path):
        import signal

        previous = signal.getsignal(signal.SIGTERM)
        twin, truth0, ensemble0 = make_twin()
        CampaignRunner(twin, tmp_path, interval=INTERVAL).run(
            truth0, ensemble0, 2
        )
        assert signal.getsignal(signal.SIGTERM) is previous


class TestSharedCheckpointRoot:
    """Two campaigns GC'ing under one parent directory must never collect
    each other's checkpoints — retention is scoped to a campaign's own
    cycle directories."""

    def test_gc_is_campaign_scoped(self, tmp_path):
        twin_a, truth0, ensemble0 = make_twin()
        twin_b, _, _ = make_twin()
        runner_a = CampaignRunner(
            twin_a, tmp_path / "campaign-a", interval=1,
            retention=RetentionPolicy(keep_last=2, keep_every=4),
        )
        runner_b = CampaignRunner(
            twin_b, tmp_path / "campaign-b", interval=1,
            retention=RetentionPolicy(keep_last=1, keep_every=100),
        )
        runner_a.run(truth0, ensemble0, N_CYCLES)
        runner_b.run(truth0, ensemble0, N_CYCLES)
        # Each store enforces exactly its own policy on its own cycles.
        assert runner_a.store.cycles() == [4, 7, 8]
        assert runner_b.store.cycles() == [8]
        # Another GC pass on A must not reach into B's directory.
        runner_a.store.gc()
        assert runner_b.store.cycles() == [8]
        assert runner_a.store.cycles() == [4, 7, 8]

    def test_interleaved_saves_do_not_cross_collect(self, tmp_path):
        rng = np.random.default_rng(0)
        store_a = CheckpointStore(
            tmp_path / "a", retention=RetentionPolicy(keep_last=1)
        )
        store_b = CheckpointStore(
            tmp_path / "b", retention=RetentionPolicy(keep_last=1)
        )
        for cycle in (1, 2, 3):
            store_a.save(cycle, rng.normal(size=(6, 3)))
            store_b.save(cycle, rng.normal(size=(6, 3)))
        assert store_a.cycles() == [3]
        assert store_b.cycles() == [3]
        assert np.array_equal(
            store_b.load(3).ensemble, store_b.load_best().ensemble
        )
