"""Tests for the cost model (Eqs. 7-10) and calibration."""

import math

import pytest

from repro.cluster import MachineSpec
from repro.costmodel import (
    CostParams,
    calibrate_from_machine,
    t1,
    t_comm,
    t_comp,
    t_read,
    t_total,
)


def params(**kw):
    defaults = dict(
        n_x=360, n_y=180, n_members=24, h=240.0, xi=4, eta=2,
        a=1e-6, b=1e-10, c=1e-4, theta=1e-9,
    )
    defaults.update(kw)
    return CostParams(**defaults)


class TestCostParams:
    def test_valid(self):
        p = params()
        assert p.n_x == 360

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            params(n_x=0)
        with pytest.raises(ValueError):
            params(theta=-1)

    def test_small_bar_rows(self):
        p = params()
        assert p.small_bar_rows(n_sdy=10, n_layers=3) == pytest.approx(
            180 / 30 + 4
        )

    def test_block_cols(self):
        p = params()
        assert p.block_cols(n_sdx=36) == pytest.approx(10 + 8)

    def test_validate_choice_divisibility(self):
        p = params()
        p.validate_choice(n_sdx=36, n_sdy=10, n_layers=3, n_cg=4)
        with pytest.raises(ValueError):
            p.validate_choice(n_sdx=7, n_sdy=10, n_layers=3, n_cg=4)
        with pytest.raises(ValueError):
            p.validate_choice(n_sdx=36, n_sdy=10, n_layers=5, n_cg=4)
        with pytest.raises(ValueError):
            p.validate_choice(n_sdx=36, n_sdy=10, n_layers=3, n_cg=5)


class TestFormulas:
    def test_t_read_formula(self):
        p = params()
        n_sdy, L, n_cg = 10, 3, 4
        expected = (
            (180 / 30 + 4) * 360 * 240.0 * (24 / 4) * 1e-9
        ) * math.log2(4 * 10 + 1)
        assert t_read(p, n_sdy, L, n_cg) == pytest.approx(expected)

    def test_t_comm_formula(self):
        p = params()
        n_sdx, n_sdy, L, n_cg = 36, 10, 3, 4
        block_bytes = (180 / 30 + 4) * (10 + 8) * (24 / 4) * 240.0
        expected = 36 * math.log2(5) * (1e-6 + 1e-10 * block_bytes)
        assert t_comm(p, n_sdx, n_sdy, L, n_cg) == pytest.approx(expected)

    def test_t_comp_formula(self):
        p = params()
        assert t_comp(p, n_sdx=36, n_sdy=10, n_layers=3) == pytest.approx(
            1e-4 * (180 / 30) * 10
        )

    def test_t1_is_read_plus_comm(self):
        p = params()
        args = dict(n_sdx=36, n_sdy=10, n_layers=3, n_cg=4)
        assert t1(p, **args) == pytest.approx(
            t_read(p, 10, 3, 4) + t_comm(p, **args)
        )

    def test_t_total_composition(self):
        p = params()
        args = dict(n_sdx=36, n_sdy=10, n_layers=3, n_cg=4)
        assert t_total(p, **args) == pytest.approx(
            t1(p, **args) + 3 * t_comp(p, 36, 10, 3)
        )

    def test_positive_at_single_io_processor(self):
        """The guarded log keeps T_read > 0 at C1 = 1 (see module doc)."""
        p = params()
        assert t_read(p, n_sdy=1, n_layers=1, n_cg=1) > 0

    def test_t_read_decreases_with_more_groups(self):
        """More concurrent groups => fewer files per group => faster; the
        log contention factor must not reverse the trend at small n_cg."""
        p = params()
        values = [t_read(p, n_sdy=10, n_layers=3, n_cg=g) for g in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_t_comp_halves_with_double_processors(self):
        p = params()
        a = t_comp(p, n_sdx=18, n_sdy=10, n_layers=3)
        b = t_comp(p, n_sdx=36, n_sdy=10, n_layers=3)
        assert a == pytest.approx(2 * b)

    def test_more_layers_reduce_exposed_t1(self):
        """Larger L => smaller first-stage bars => less exposed read+comm."""
        p = params()
        v1 = t1(p, n_sdx=36, n_sdy=10, n_layers=1, n_cg=4)
        v6 = t1(p, n_sdx=36, n_sdy=10, n_layers=6, n_cg=4)
        assert v6 < v1

    def test_l_times_tcomp_constant_in_l(self):
        """The paper's observation: with C2 fixed, L·T_comp is constant."""
        p = params()
        totals = [
            L * t_comp(p, n_sdx=36, n_sdy=10, n_layers=L) for L in (1, 2, 3, 6)
        ]
        assert all(v == pytest.approx(totals[0]) for v in totals)


class TestCalibration:
    def test_nominal_theta(self):
        spec = MachineSpec(theta=5e-9)
        p = calibrate_from_machine(spec, 360, 180, 24, 240.0, 4, 2)
        assert p.theta == 5e-9
        assert p.a == spec.alpha
        assert p.c == spec.c_point

    def test_measured_theta_includes_seek_amortisation(self):
        spec = MachineSpec(theta=5e-9, seek_time=1.0)
        p = calibrate_from_machine(
            spec, 360, 180, 24, 240.0, 4, 2, measure_theta=True,
            probe_bytes=1e6,
        )
        # 1 seek of 1 s over 1e6 bytes adds 1e-6 s/B on top of theta.
        assert p.theta == pytest.approx(5e-9 + 1e-6, rel=1e-6)


class TestPipelinedTotal:
    def test_equals_paper_formula_when_compute_bound(self):
        """t_total_pipelined == Eq. (10) whenever computation bounds each
        stage — the regime equivalence the autotuner relies on."""
        from repro.costmodel.model import t_total_pipelined

        p = params(c=1.0)  # enormous per-point cost => compute-bound
        args = dict(n_sdx=36, n_sdy=10, n_layers=3, n_cg=4)
        assert t_total_pipelined(p, **args) == pytest.approx(
            t_total(p, **args)
        )

    def test_upper_bounds_paper_formula(self):
        from repro.costmodel.model import t_total_pipelined

        for c in (1e-8, 1e-5, 1e-2):
            p = params(c=c)
            args = dict(n_sdx=36, n_sdy=10, n_layers=6, n_cg=4)
            assert t_total_pipelined(p, **args) >= t_total(p, **args) - 1e-15

    def test_penalises_comm_bound_configs(self):
        """An extreme n_sdx (1-column blocks) makes per-stage comm dominate;
        the pipelined total must be strictly above Eq. (10)."""
        from repro.costmodel.model import t_total_pipelined

        p = params(c=1e-9, a=1e-3)  # negligible compute, expensive messages
        args = dict(n_sdx=360, n_sdy=10, n_layers=6, n_cg=4)
        assert t_total_pipelined(p, **args) > 1.5 * t_total(p, **args)
