"""Tests for the experiment runners, registry, report and CLI plumbing.

Shape-level acceptance at the calibrated reduced scale is exercised by the
benchmark harness (benchmarks/bench_fig*.py); here we verify the runners'
mechanics on a *micro* configuration that finishes in well under a second
each, plus the robust shape properties that hold at any scale (Fig. 5
linearity, Fig. 10 monotonicity).
"""

import pytest

from repro.cluster import MachineSpec
from repro.experiments import (
    ExperimentConfig,
    FIGURES,
    FigureResult,
    default_config,
    format_result,
    get_figure,
)
from repro.experiments.fig05 import run_fig05
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig13 import run_fig13
from repro.filters import PerfScenario


@pytest.fixture(scope="module")
def micro_config():
    """A miniature configuration: exercises every code path in <1 s/figure."""
    return ExperimentConfig(
        full=False,
        spec=MachineSpec.small_cluster(),
        scenario=PerfScenario(n_x=96, n_y=48, n_members=8, h_bytes=240,
                              xi=2, eta=1),
        scaling_configs=((4, 4), (8, 4), (12, 4), (16, 4)),
        fig5_n_sdx=(4, 8, 16, 32),
        fig5_n_sdy=4,
        fig5_members=8,
        fig10_groups=(1, 2, 4, 8),
        fig12_c2=16,
        epsilon=1e-3,
    )


class TestRegistry:
    def test_all_seven_figures_registered(self):
        assert sorted(FIGURES) == [
            "fig01", "fig05", "fig09", "fig10", "fig11", "fig12", "fig13",
        ]

    @pytest.mark.parametrize("alias", ["fig1", "fig01", "Figure1", "FIG13"])
    def test_get_figure_aliases(self, alias):
        assert callable(get_figure(alias))

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            get_figure("fig99")


class TestDefaultConfig:
    def test_reduced_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        cfg = default_config()
        assert not cfg.full
        assert cfg.scenario.n_x == 360

    def test_env_switches_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        cfg = default_config()
        assert cfg.full
        assert cfg.scenario.n_x == 3600

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_config(full=False).full is False

    def test_sweeps_are_divisor_valid(self):
        for cfg in (default_config(full=False), default_config(full=True)):
            for n_sdx, n_sdy in cfg.scaling_configs:
                assert cfg.scenario.n_x % n_sdx == 0
                assert cfg.scenario.n_y % n_sdy == 0
            for n_sdx in cfg.fig5_n_sdx:
                assert cfg.scenario.n_x % n_sdx == 0
            for n_cg in cfg.fig10_groups:
                assert cfg.scenario.n_members % n_cg == 0


class TestRunnersStructure:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_runner_produces_complete_rows(self, name, micro_config):
        result = FIGURES[name](micro_config)
        assert isinstance(result, FigureResult)
        assert result.rows, f"{name} produced no rows"
        for row in result.rows:
            assert set(row) == set(result.columns)
        assert result.acceptance, f"{name} has no acceptance criteria"

    def test_runs_are_reproducible(self, micro_config):
        a = run_fig05(micro_config)
        b = run_fig05(micro_config)
        assert a.rows == b.rows


class TestRobustShapes:
    def test_fig05_linear_even_at_micro_scale(self, micro_config):
        result = run_fig05(micro_config)
        assert result.acceptance["read_time_increases"]
        assert result.acceptance["positive_slope"]

    def test_fig10_never_increases_at_micro_scale(self, micro_config):
        result = run_fig10(micro_config)
        assert result.acceptance["never_increases"]
        assert result.acceptance["concurrency_helps_overall"]

    def test_fig13_speedup_positive(self, micro_config):
        result = run_fig13(micro_config)
        assert all(row["speedup"] > 0 for row in result.rows)
        assert all(row["senkf_c1"] + row["senkf_c2"] <= row["n_p"]
                   for row in result.rows)


class TestReport:
    def test_format_contains_rows_and_checks(self, micro_config):
        result = run_fig05(micro_config)
        text = format_result(result)
        assert "fig05" in text
        assert "read_time" in text
        assert "PASS" in text or "FAIL" in text
        assert "figure outcome" in text

    def test_series_extraction(self, micro_config):
        result = run_fig05(micro_config)
        assert len(result.series("read_time")) == len(result.rows)
        with pytest.raises(KeyError):
            result.series("nonexistent")


class TestCli:
    def test_cli_single_figure(self, micro_config, capsys, monkeypatch):
        # Route the CLI through the micro config for speed.
        import repro.experiments.cli as cli

        monkeypatch.setattr(cli, "default_config", lambda full=None: micro_config)
        code = cli.main(["fig05"])
        out = capsys.readouterr().out
        assert "fig05" in out
        assert code in (0, 1)

    def test_cli_unknown_figure(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig99"]) == 2


class TestReportFormatting:
    def test_fmt_values(self):
        from repro.experiments.report import _fmt

        assert _fmt(True) == "yes"
        assert _fmt(False) == "no"
        assert _fmt(3) == "3"
        assert _fmt(0.5) == "0.5"
        assert _fmt(1.23456e-5) == "1.235e-05"
        assert _fmt(123456.0) == "1.235e+05"
        assert _fmt("text") == "text"

    def test_format_result_empty_rows(self):
        from repro.experiments import FigureResult, format_result

        result = FigureResult(name="figX", title="t", claim="c",
                              columns=["a", "b"])
        text = format_result(result)
        assert "figX" in text
        assert "FAIL" in text  # no acceptance -> not passed

    def test_run_all_covers_registry(self, micro_config):
        from repro.experiments import FIGURES, run_all

        results = run_all(micro_config)
        assert sorted(results) == sorted(FIGURES)
        assert all(r.rows for r in results.values())


class TestScorecard:
    def test_scorecard_runs_all_figures(self, micro_config):
        from repro.experiments import format_scorecard, run_scorecard

        rows, results = run_scorecard(micro_config)
        assert len(rows) == 7
        assert {r["figure"] for r in rows} == set(results)
        text = format_scorecard(rows)
        assert "figures reproduced:" in text
