"""End-to-end integration: the full system assembled, both substrates.

Pipeline exercised:
  ocean model spin-up -> background ensemble -> EnsembleStore (real files)
  -> strategy read plan (real seeks) -> domain-decomposed assimilation
  -> analysis write-back plan -> verification,
plus the simulated twin of the same configuration and the cost-model /
auto-tuner / DES consistency loop.
"""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import Decomposition, Grid, ObservationNetwork
from repro.core.verification import crps_mean, rmse
from repro.data import EnsembleStore, read_plan_from_disk
from repro.filters import PEnKF, PerfScenario, SEnKF, simulate_senkf
from repro.io import (
    bar_gather_write_plan,
    block_read_plan,
    simulate_read_plan,
    simulate_write_plan,
)
from repro.models import AdvectionDiffusionModel, correlated_ensemble
from repro.tuning import autotune


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        """Generate, persist, re-read and assimilate a real ensemble."""
        grid = Grid(n_x=24, n_y=12, dx_km=1.0, dy_km=1.0)
        model = AdvectionDiffusionModel(grid, u_max=1.0, kappa=0.05, dt=0.2)
        rng = np.random.default_rng(0)

        truth = model.step(
            correlated_ensemble(grid, 1, length_scale_km=5.0, rng=rng)[:, 0],
            n_steps=20,
        )
        background = model.step_ensemble(
            correlated_ensemble(grid, 16, length_scale_km=5.0, std=0.8,
                                rng=rng),
            n_steps=20,
        )

        store = EnsembleStore(tmp_path_factory.mktemp("ens"), grid)
        store.write_ensemble(background)
        return grid, model, truth, background, store

    def test_disk_roundtrip_preserves_ensemble(self, pipeline):
        _, _, _, background, store = pipeline
        assert np.allclose(store.read_ensemble(), background)

    def test_block_plan_stages_expansions_from_real_files(self, pipeline):
        grid, _, _, background, store = pipeline
        decomp = Decomposition(grid, n_sdx=4, n_sdy=3, xi=2, eta=1)
        plan = block_read_plan(decomp, store.layout, n_files=16)
        staged = read_plan_from_disk(plan, store)
        for sd in decomp:
            rank = decomp.rank_of(sd.i, sd.j)
            for f in (0, 7, 15):
                got = np.sort(staged[rank][f])
                want = np.sort(background[sd.expansion_flat, f])
                assert np.allclose(got, want)

    def test_assimilation_from_disk_data_reduces_error(self, pipeline):
        grid, _, truth, _, store = pipeline
        background = store.read_ensemble()
        rng = np.random.default_rng(1)
        net = ObservationNetwork.random(grid, m=80, obs_error_std=0.1,
                                        rng=rng)
        y = net.observe(truth, rng=rng)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=3, xi=2, eta=2)
        filt = PEnKF(radius_km=2.0, ridge=1e-2)
        analysed = filt.assimilate(decomp, background, net, y, rng=2)

        err_b = rmse(background.mean(axis=1), truth)
        err_a = rmse(analysed.mean(axis=1), truth)
        assert err_a < err_b
        # CRPS must improve as well (probabilistic skill, not just mean).
        assert crps_mean(analysed, truth) < crps_mean(background, truth)

    def test_analysis_write_back_roundtrip(self, pipeline, tmp_path):
        grid, _, truth, _, store = pipeline
        background = store.read_ensemble()
        rng = np.random.default_rng(3)
        net = ObservationNetwork.random(grid, m=60, obs_error_std=0.1,
                                        rng=rng)
        y = net.observe(truth, rng=rng)
        decomp = Decomposition(grid, n_sdx=4, n_sdy=3, xi=2, eta=2)
        analysed = SEnKF(radius_km=2.0, n_layers=2, ridge=1e-2).assimilate(
            decomp, background, net, y, rng=4
        )
        out_store = EnsembleStore(tmp_path / "analysis", grid)
        out_store.write_ensemble(analysed)
        assert np.allclose(out_store.read_ensemble(), analysed)

    def test_simulated_twin_of_same_configuration(self, pipeline):
        """The same 4x3 decomposition, simulated: produces a coherent
        phase timeline on the DES machine."""
        grid, *_ = pipeline
        scenario = PerfScenario(
            n_x=grid.n_x, n_y=grid.n_y, n_members=16, h_bytes=8, xi=2, eta=2
        )
        spec = MachineSpec.small_cluster()
        report = simulate_senkf(spec, scenario, n_sdx=4, n_sdy=3,
                                n_layers=2, n_cg=2)
        assert report.total_time > 0
        assert report.n_processors == 12 + 6
        # Every compute rank computed exactly n_layers stages.
        for rank in report.compute_ranks:
            comps = report.timeline.intervals("compute", ranks=[rank])
            assert len(comps) == 2


class TestModelSimulatorTunerConsistency:
    def test_tuned_configuration_simulates_close_to_model(self):
        """Close the co-design loop: Algorithm 2's predicted total and the
        DES measurement of the chosen configuration agree."""
        scenario = PerfScenario.small()
        spec = MachineSpec.small_cluster()
        params = scenario.cost_params(spec)
        tuned = autotune(params, n_p=480, epsilon=1e-3, objective="pipelined")
        report = simulate_senkf(
            spec,
            scenario,
            n_sdx=tuned.choice.n_sdx,
            n_sdy=tuned.choice.n_sdy,
            n_layers=tuned.choice.n_layers,
            n_cg=tuned.choice.n_cg,
        )
        assert report.total_time == pytest.approx(tuned.t_total, rel=0.35)

    def test_read_and_write_phases_compose(self):
        """A full I/O cycle (read background, write analysis) on one DES
        machine: the clock advances through both phases."""
        scenario = PerfScenario(n_x=48, n_y=24, n_members=8, h_bytes=240,
                                xi=2, eta=1)
        decomp = scenario.decomposition(4, 3)
        machine = Machine(MachineSpec.small_cluster())

        read_plan = block_read_plan(decomp, scenario.layout, n_files=8)
        _, t_read = simulate_read_plan(machine, read_plan)
        write_plan = bar_gather_write_plan(decomp, scenario.layout,
                                           n_files=8, n_cg=2)
        _, t_write = simulate_write_plan(machine, write_plan)
        assert t_read > 0 and t_write > 0
        assert machine.now == pytest.approx(t_read + t_write)
